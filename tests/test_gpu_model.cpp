//===- tests/test_gpu_model.cpp - Machine-model tests ----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/DeviceSpec.h"
#include "gpu/Occupancy.h"
#include "gpu/PerfModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cogent;
using namespace cogent::gpu;

namespace {

TEST(DeviceSpec, P100Parameters) {
  DeviceSpec Device = makeP100();
  EXPECT_EQ(Device.Name, "P100");
  EXPECT_EQ(Device.NumSMs, 56u);
  EXPECT_EQ(Device.SharedMemPerBlock, 48u * 1024);
  EXPECT_EQ(Device.TransactionBytes, 128u);
  EXPECT_EQ(Device.maxWarpsPerSM(), 64u);
}

TEST(DeviceSpec, V100Parameters) {
  DeviceSpec Device = makeV100();
  EXPECT_EQ(Device.NumSMs, 80u);
  EXPECT_GT(Device.DramBandwidthGBs, makeP100().DramBandwidthGBs);
  EXPECT_GT(Device.PeakGflopsDouble, makeP100().PeakGflopsDouble);
  EXPECT_NEAR(Device.PeakGflopsSingle / Device.PeakGflopsDouble, 2.0, 0.01);
}

TEST(Occupancy, ThreadLimited) {
  DeviceSpec Device = makeV100();
  BlockResources Block{/*ThreadsPerBlock=*/1024, /*SharedMemBytes=*/0,
                       /*RegistersPerThread=*/32};
  OccupancyResult Result = computeOccupancy(Device, Block);
  EXPECT_EQ(Result.BlocksPerSM, 2u);
  EXPECT_DOUBLE_EQ(Result.Occupancy, 1.0);
}

TEST(Occupancy, SmemLimited) {
  DeviceSpec Device = makeV100(); // 96 KiB per SM
  BlockResources Block{256, 40 * 1024, 32};
  OccupancyResult Result = computeOccupancy(Device, Block);
  EXPECT_EQ(Result.BlocksPerSM, 2u);
  EXPECT_STREQ(Result.Limiter, "smem");
  EXPECT_NEAR(Result.Occupancy, 2.0 * 8 / 64, 1e-9);
}

TEST(Occupancy, RegisterLimited) {
  DeviceSpec Device = makeV100(); // 65536 registers per SM
  BlockResources Block{256, 0, 255};
  OccupancyResult Result = computeOccupancy(Device, Block);
  EXPECT_EQ(Result.BlocksPerSM, 65536u / (255 * 256));
  EXPECT_STREQ(Result.Limiter, "regs");
}

TEST(Occupancy, BlockCapLimited) {
  DeviceSpec Device = makeV100();
  BlockResources Block{32, 0, 16};
  OccupancyResult Result = computeOccupancy(Device, Block);
  EXPECT_EQ(Result.BlocksPerSM, Device.MaxBlocksPerSM);
}

TEST(Occupancy, UnfitBlock) {
  DeviceSpec Device = makeV100();
  BlockResources TooManyThreads{2048, 0, 32};
  EXPECT_EQ(computeOccupancy(Device, TooManyThreads).BlocksPerSM, 0u);
  BlockResources TooMuchSmem{256, 1024 * 1024, 32};
  EXPECT_EQ(computeOccupancy(Device, TooMuchSmem).BlocksPerSM, 0u);
  BlockResources ZeroThreads{0, 0, 32};
  EXPECT_EQ(computeOccupancy(Device, ZeroThreads).BlocksPerSM, 0u);
}

TEST(Occupancy, ZeroRegisterKernelDoesNotDivideByZero) {
  // A kernel whose register estimate rounds to zero must not trip a
  // division; the register term simply stops limiting.
  DeviceSpec Device = makeV100();
  BlockResources Block{256, 0, 0};
  OccupancyResult Result = computeOccupancy(Device, Block);
  EXPECT_GT(Result.BlocksPerSM, 0u);
  EXPECT_STRNE(Result.Limiter, "regs");
  EXPECT_LE(Result.BlocksPerSM, Device.MaxBlocksPerSM);
}

TEST(Occupancy, SmemExactlyAtLimits) {
  // Exactly at the per-block limit: fits, and the SM hosts
  // SharedMemPerSM / SharedMemPerBlock co-resident blocks.
  DeviceSpec Device = makeV100(); // 48 KiB/block, 96 KiB/SM
  BlockResources AtBlockLimit{256, Device.SharedMemPerBlock, 32};
  OccupancyResult Result = computeOccupancy(Device, AtBlockLimit);
  EXPECT_EQ(Result.BlocksPerSM,
            Device.SharedMemPerSM / Device.SharedMemPerBlock);
  EXPECT_STREQ(Result.Limiter, "smem");

  // One byte over the per-block limit: unfit, occupancy zero — clamped to
  // the DeviceSpec, not UB.
  BlockResources OverBlockLimit{256, Device.SharedMemPerBlock + 1, 32};
  OccupancyResult Over = computeOccupancy(Device, OverBlockLimit);
  EXPECT_EQ(Over.BlocksPerSM, 0u);
  EXPECT_DOUBLE_EQ(Over.Occupancy, 0.0);
  EXPECT_STREQ(Over.Limiter, "unfit");

  // A device allowing one block to own the whole SM: exactly at the SM
  // limit yields exactly one resident block.
  DeviceSpec WholeSM = makeV100();
  WholeSM.SharedMemPerBlock = WholeSM.SharedMemPerSM;
  BlockResources AtSmLimit{256, WholeSM.SharedMemPerSM, 32};
  OccupancyResult One = computeOccupancy(WholeSM, AtSmLimit);
  EXPECT_EQ(One.BlocksPerSM, 1u);
  EXPECT_STREQ(One.Limiter, "smem");
}

TEST(Occupancy, BlockSizesAboveHardwareMaximum) {
  DeviceSpec Device = makeV100(); // MaxThreadsPerBlock = 1024
  for (unsigned Threads :
       {Device.MaxThreadsPerBlock + 1, Device.MaxThreadsPerBlock * 2,
        4096u, ~0u}) {
    BlockResources Block{Threads, 0, 32};
    OccupancyResult Result = computeOccupancy(Device, Block);
    EXPECT_EQ(Result.BlocksPerSM, 0u) << Threads;
    EXPECT_DOUBLE_EQ(Result.Occupancy, 0.0) << Threads;
    EXPECT_STREQ(Result.Limiter, "unfit") << Threads;
  }
  // Exactly at the maximum still fits.
  BlockResources AtMax{Device.MaxThreadsPerBlock, 0, 32};
  EXPECT_GT(computeOccupancy(Device, AtMax).BlocksPerSM, 0u);
}

TEST(Occupancy, WaveEfficiency) {
  DeviceSpec Device = makeV100(); // 80 SMs
  // Exactly one full wave.
  EXPECT_DOUBLE_EQ(waveEfficiency(Device, 80, 1), 1.0);
  // Half a wave: half the SMs idle.
  EXPECT_DOUBLE_EQ(waveEfficiency(Device, 40, 1), 0.5);
  // 81 blocks: a nearly empty second wave.
  EXPECT_NEAR(waveEfficiency(Device, 81, 1), 81.0 / 160.0, 1e-12);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(waveEfficiency(Device, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(waveEfficiency(Device, 100, 0), 0.0);
}

TEST(PerfModel, CalibrationPerDevice) {
  Calibration P100 = makeCalibration(makeP100());
  Calibration V100 = makeCalibration(makeV100());
  EXPECT_LT(P100.MaxDramEfficiency, V100.MaxDramEfficiency);
  EXPECT_GT(P100.DramSaturationOccupancy, V100.DramSaturationOccupancy);
}

KernelProfile typicalProfile() {
  KernelProfile Profile;
  Profile.Flops = 1e9;
  Profile.DramBytes = 2e8;
  Profile.SmemBytes = 1e9;
  Profile.Occupancy = 0.5;
  Profile.WaveEff = 1.0;
  Profile.ElementSize = 8;
  Profile.RegisterTileFlops = 16;
  return Profile;
}

TEST(PerfModel, MoreTrafficMeansMoreTime) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile Light = typicalProfile();
  KernelProfile Heavy = typicalProfile();
  Heavy.DramBytes *= 10;
  EXPECT_LT(estimateKernelTime(Device, Calib, Light).TimeMs,
            estimateKernelTime(Device, Calib, Heavy).TimeMs);
}

TEST(PerfModel, GflopsConsistentWithTime) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  PerfEstimate Est = estimateKernelTime(Device, Calib, typicalProfile());
  EXPECT_NEAR(Est.Gflops, 1e9 / (Est.TimeMs * 1e-3) / 1e9, 1e-6);
}

TEST(PerfModel, ZeroOccupancyIsInfeasible) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile Profile = typicalProfile();
  Profile.Occupancy = 0.0;
  PerfEstimate Est = estimateKernelTime(Device, Calib, Profile);
  EXPECT_TRUE(std::isinf(Est.TimeMs));
}

TEST(PerfModel, BoundLabels) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile MemBound = typicalProfile();
  MemBound.DramBytes = 1e10;
  EXPECT_STREQ(estimateKernelTime(Device, Calib, MemBound).Bound, "dram");
  KernelProfile ComputeBound = typicalProfile();
  ComputeBound.Flops = 1e12;
  ComputeBound.DramBytes = 1e6;
  ComputeBound.SmemBytes = 1e6;
  EXPECT_STREQ(estimateKernelTime(Device, Calib, ComputeBound).Bound,
               "compute");
}

TEST(PerfModel, SinglePrecisionDoublesComputeRate) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile Dp = typicalProfile();
  Dp.Flops = 1e12;
  Dp.DramBytes = 1e6;
  Dp.SmemBytes = 0;
  KernelProfile Sp = Dp;
  Sp.ElementSize = 4;
  EXPECT_NEAR(estimateKernelTime(Device, Calib, Dp).TimeMs /
                  estimateKernelTime(Device, Calib, Sp).TimeMs,
              2.0, 0.1);
}

TEST(PerfModel, LowOccupancyThrottlesBandwidth) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile Saturated = typicalProfile();
  Saturated.DramBytes = 1e10;
  KernelProfile Starved = Saturated;
  Starved.Occupancy = 0.02; // below the saturation point
  EXPECT_LT(estimateKernelTime(Device, Calib, Saturated).TimeMs,
            estimateKernelTime(Device, Calib, Starved).TimeMs);
}

TEST(PerfModel, SmallRegisterTileLimitsIlp) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile BigTile = typicalProfile();
  BigTile.Flops = 1e12;
  BigTile.DramBytes = 1e6;
  BigTile.SmemBytes = 0;
  KernelProfile TinyTile = BigTile;
  TinyTile.RegisterTileFlops = 1;
  EXPECT_LT(estimateKernelTime(Device, Calib, BigTile).TimeMs,
            estimateKernelTime(Device, Calib, TinyTile).TimeMs);
}

TEST(PerfModel, LaunchOverheadFloorsTinyKernels) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  KernelProfile Tiny = typicalProfile();
  Tiny.Flops = 1e3;
  Tiny.DramBytes = 1e3;
  Tiny.SmemBytes = 0;
  PerfEstimate Est = estimateKernelTime(Device, Calib, Tiny);
  EXPECT_GE(Est.TimeMs, Device.KernelLaunchOverheadUs * 1e-3);
}

TEST(PerfModel, StreamTime) {
  DeviceSpec Device = makeV100();
  Calibration Calib = makeCalibration(Device);
  double OneGB = estimateStreamTimeMs(Device, Calib, 1e9, 1.0);
  double TwoGB = estimateStreamTimeMs(Device, Calib, 2e9, 1.0);
  EXPECT_GT(TwoGB, OneGB);
  double HalfEff = estimateStreamTimeMs(Device, Calib, 1e9, 0.5);
  EXPECT_GT(HalfEff, OneGB);
}

} // namespace
