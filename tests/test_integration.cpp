//===- tests/test_integration.cpp - End-to-end pipeline tests --------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the whole pipeline the way a user would: parse -> generate
/// (enumerate + rank + emit) -> execute the chosen schedule on the
/// simulator -> compare against the reference oracle and the TTGT baseline,
/// across TCCG entries and both devices.
///
//===----------------------------------------------------------------------===//

#include "baselines/NwchemGen.h"
#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using core::GenerationResult;
using ir::Contraction;
using ir::Operand;
using tensor::Tensor;

namespace {

TEST(Integration, GenerateProducesRankedKernels) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = suite::suiteEntry(12).contraction();
  CogentOptions Options;
  Options.TopK = 5;
  ErrorOr<GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  ASSERT_EQ(Result->Kernels.size(), 5u);
  for (size_t I = 1; I < Result->Kernels.size(); ++I)
    EXPECT_LE(Result->Kernels[I - 1].Cost.total(),
              Result->Kernels[I].Cost.total());
  EXPECT_GT(Result->best().Predicted.Gflops, 0.0);
  EXPECT_FALSE(Result->best().Source.KernelSource.empty());
  EXPECT_GT(Result->Stats.Survivors, 0u);
  EXPECT_GE(Result->ElapsedMs, 0.0);
}

TEST(Integration, ParseAndGenerateConvenience) {
  Cogent Generator(gpu::makeP100());
  ErrorOr<GenerationResult> Result = Generator.generate(
      "ij-ik-kj", {{'i', 1024}, {'j', 1024}, {'k', 1024}});
  ASSERT_TRUE(Result.hasValue());
  EXPECT_GT(Result->best().Predicted.Gflops, 100.0);
}

TEST(Integration, GenerateRejectsMalformedSpec) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<GenerationResult> Result =
      Generator.generate("ij-ik", {{'i', 8}, {'j', 8}, {'k', 8}});
  EXPECT_FALSE(Result.hasValue());
}

TEST(Integration, BestKernelBeatsWorstRankedOnModeledCost) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = suite::suiteEntry(31).contraction();
  CogentOptions Options;
  Options.TopK = 50;
  ErrorOr<GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  ASSERT_GT(Result->Kernels.size(), 1u);
  EXPECT_LT(Result->Kernels.front().Cost.total(),
            Result->Kernels.back().Cost.total() * 1.0 + 1.0);
}

/// The heart of the reproduction: for suite entries at functional sizes,
/// the model-chosen kernel executed by the simulator must equal the
/// reference contraction, and so must NWChem's fixed config and the TTGT
/// pipeline.
class EndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(EndToEnd, AllPathsAgreeOnSuiteEntry) {
  const suite::SuiteEntry &Entry = suite::suiteEntry(GetParam());
  Contraction TC = Entry.contractionScaled(6);

  Rng Generator(500 + GetParam());
  Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  Tensor<double> Expected = tensor::makeOperand<double>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);

  // COGENT's best kernel through the simulator.
  Cogent Gen(gpu::makeV100());
  core::CogentOptions Options;
  Options.Enumeration.MinThreadBlocks = 1;
  Options.Enumeration.MinOccupancy = 0.0;
  ErrorOr<GenerationResult> Result = Gen.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue()) << Entry.Spec;
  core::KernelPlan Plan(TC, Result->best().Config);
  Tensor<double> FromCogent = tensor::makeOperand<double>(TC, Operand::C);
  gpu::SimResult Sim = gpu::simulateKernel(Plan, FromCogent, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, FromCogent), 1e-10)
      << Entry.Spec << " config " << Result->best().Config.toString();
  EXPECT_GT(Sim.totalTransactions(), 0u);

  // NWChem's fixed heuristic through the same simulator.
  core::KernelConfig Nw = baselines::nwchemConfig(TC);
  core::KernelPlan NwPlan(TC, Nw);
  Tensor<double> FromNwchem = tensor::makeOperand<double>(TC, Operand::C);
  gpu::simulateKernel(NwPlan, FromNwchem, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, FromNwchem), 1e-10)
      << Entry.Spec;

  // TTGT functional pipeline.
  Tensor<double> FromTtgt = tensor::makeOperand<double>(TC, Operand::C);
  baselines::runTtgt(TC, FromTtgt, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, FromTtgt), 1e-10)
      << Entry.Spec;
}

INSTANTIATE_TEST_SUITE_P(Tccg, EndToEnd, ::testing::Range(1, 49));

TEST(Integration, EmittedSourceConsistentWithChosenConfig) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = suite::suiteEntry(31).contraction();
  ErrorOr<GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  const core::GeneratedKernel &Kernel = Result->best();
  std::string Expected =
      "#define TBX " + std::to_string(Kernel.Config.tbxSize());
  EXPECT_NE(Kernel.Source.KernelSource.find(Expected), std::string::npos);
  EXPECT_NE(Kernel.Source.KernelSource.find(Kernel.Config.toString()),
            std::string::npos);
}

TEST(Integration, SinglePrecisionGenerationEmitsFloatKernels) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = suite::suiteEntry(31).contraction();
  CogentOptions Options;
  Options.ElementSize = 4;
  ErrorOr<GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_NE(Result->best().Source.KernelSource.find("float s_A"),
            std::string::npos);
  // SP roughly doubles throughput on compute-heavy shapes and never loses.
  CogentOptions DpOptions;
  ErrorOr<GenerationResult> DpResult = Generator.generate(TC, DpOptions);
  ASSERT_TRUE(DpResult.hasValue());
  EXPECT_GE(Result->best().Predicted.Gflops,
            DpResult->best().Predicted.Gflops);
}

TEST(Integration, DeviceAffectsPrediction) {
  ir::Contraction TC = suite::suiteEntry(31).contraction();
  Cogent P100(gpu::makeP100());
  Cogent V100(gpu::makeV100());
  ErrorOr<GenerationResult> OnP100 = P100.generate(TC);
  ErrorOr<GenerationResult> OnV100 = V100.generate(TC);
  ASSERT_TRUE(OnP100.hasValue() && OnV100.hasValue());
  // V100 has more bandwidth and flops: the same contraction must predict
  // faster execution.
  EXPECT_GT(OnV100->best().Predicted.Gflops,
            OnP100->best().Predicted.Gflops);
}

TEST(Integration, SimulatorTrafficTracksModeledCost) {
  // Modeled DRAM transactions and simulator-exact ones must agree to a
  // small factor for the chosen kernels of a few suite entries.
  Cogent Generator(gpu::makeV100());
  for (int Id : {1, 12, 31}) {
    Contraction TC = suite::suiteEntry(Id).contractionScaled(8);
    core::CogentOptions Options;
    Options.Enumeration.MinThreadBlocks = 1;
    Options.Enumeration.MinOccupancy = 0.0;
    ErrorOr<GenerationResult> Result = Generator.generate(TC, Options);
    ASSERT_TRUE(Result.hasValue());
    core::KernelPlan Plan(TC, Result->best().Config);

    Rng Gen(7);
    Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
    Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
    A.fillRandom(Gen);
    B.fillRandom(Gen);
    Tensor<double> C = tensor::makeOperand<double>(TC, Operand::C);
    gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);
    double Modeled = Result->best().Cost.total();
    double Exact = static_cast<double>(Sim.totalTransactions());
    EXPECT_LT(Modeled / Exact, 2.5) << Id;
    EXPECT_GT(Modeled / Exact, 0.4) << Id;
  }
}

} // namespace
