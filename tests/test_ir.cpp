//===- tests/test_ir.cpp - Contraction IR unit tests ----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Contraction.h"
#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

using namespace cogent;
using ir::Contraction;
using ir::IndexKind;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 16) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

TEST(ContractionParse, Eq1Structure) {
  Contraction TC = eq1();
  EXPECT_EQ(TC.indices(Operand::C), (std::vector<char>{'a', 'b', 'c', 'd'}));
  EXPECT_EQ(TC.indices(Operand::A), (std::vector<char>{'a', 'e', 'b', 'f'}));
  EXPECT_EQ(TC.indices(Operand::B), (std::vector<char>{'d', 'f', 'c', 'e'}));
  EXPECT_EQ(TC.rank(Operand::C), 4u);
}

TEST(ContractionParse, Classification) {
  Contraction TC = eq1();
  EXPECT_EQ(TC.kindOf('a'), IndexKind::ExternalA);
  EXPECT_EQ(TC.kindOf('b'), IndexKind::ExternalA);
  EXPECT_EQ(TC.kindOf('c'), IndexKind::ExternalB);
  EXPECT_EQ(TC.kindOf('d'), IndexKind::ExternalB);
  EXPECT_EQ(TC.kindOf('e'), IndexKind::Internal);
  EXPECT_EQ(TC.kindOf('f'), IndexKind::Internal);
  EXPECT_TRUE(TC.isExternal('a'));
  EXPECT_TRUE(TC.isInternal('e'));
}

TEST(ContractionParse, ReuseProperty) {
  // The paper's key property: every index is a reuse direction for exactly
  // the tensor that does not contain it.
  Contraction TC = eq1();
  EXPECT_EQ(TC.reuseTensor('a'), Operand::B);
  EXPECT_EQ(TC.reuseTensor('c'), Operand::A);
  EXPECT_EQ(TC.reuseTensor('e'), Operand::C);
  for (char Name : TC.allIndices()) {
    Operand Reuse = TC.reuseTensor(Name);
    EXPECT_FALSE(TC.contains(Reuse, Name))
        << "reuse tensor must not contain the index";
  }
}

TEST(ContractionParse, InputContaining) {
  Contraction TC = eq1();
  EXPECT_EQ(TC.inputContaining('a'), Operand::A);
  EXPECT_EQ(TC.inputContaining('d'), Operand::B);
}

TEST(ContractionParse, PositionsAndFvi) {
  Contraction TC = eq1();
  EXPECT_EQ(TC.fvi(Operand::A), 'a');
  EXPECT_EQ(TC.fvi(Operand::B), 'd');
  EXPECT_EQ(TC.fvi(Operand::C), 'a');
  EXPECT_EQ(TC.positionIn(Operand::A, 'b'), 2u);
  EXPECT_EQ(TC.positionIn(Operand::B, 'e'), 3u);
}

TEST(ContractionParse, StridesColumnMajor) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 2}, {'b', 3}, {'c', 5}, {'d', 7}, {'e', 11}, {'f', 13}});
  ASSERT_TRUE(TC.hasValue());
  // A is [a, e, b, f] with extents [2, 11, 3, 13].
  EXPECT_EQ(TC->strideIn(Operand::A, 'a'), 1);
  EXPECT_EQ(TC->strideIn(Operand::A, 'e'), 2);
  EXPECT_EQ(TC->strideIn(Operand::A, 'b'), 22);
  EXPECT_EQ(TC->strideIn(Operand::A, 'f'), 66);
  EXPECT_EQ(TC->strideIn(Operand::C, 'd'), 2 * 3 * 5);
}

TEST(ContractionParse, Counts) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 2}, {'b', 3}, {'c', 5}, {'d', 7}, {'e', 11}, {'f', 13}});
  ASSERT_TRUE(TC.hasValue());
  EXPECT_EQ(TC->numElements(Operand::C), 2 * 3 * 5 * 7);
  EXPECT_EQ(TC->numElements(Operand::A), 2 * 11 * 3 * 13);
  EXPECT_EQ(TC->internalExtent(), 11 * 13);
  EXPECT_DOUBLE_EQ(TC->flopCount(), 2.0 * 2 * 3 * 5 * 7 * 11 * 13);
  EXPECT_DOUBLE_EQ(TC->minBytesMoved(8),
                   8.0 * (2 * 3 * 5 * 7 + 2 * 11 * 3 * 13 + 7 * 13 * 5 * 11));
}

TEST(ContractionParse, OrderedIndexLists) {
  Contraction TC = eq1();
  EXPECT_EQ(TC.externalIndices(), (std::vector<char>{'a', 'b', 'c', 'd'}));
  EXPECT_EQ(TC.internalIndices(), (std::vector<char>{'e', 'f'}));
  EXPECT_EQ(TC.allIndices(),
            (std::vector<char>{'a', 'b', 'c', 'd', 'e', 'f'}));
}

TEST(ContractionParse, ToString) {
  Contraction TC = eq1(4);
  EXPECT_EQ(TC.toString(), "abcd-aebf-dfce");
  EXPECT_EQ(TC.toStringWithExtents(),
            "abcd-aebf-dfce (a=4,b=4,c=4,d=4,e=4,f=4)");
}

TEST(ContractionParse, TrimsWhitespace) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("  ij-ik-kj \n", 4);
  ASSERT_TRUE(TC.hasValue());
  EXPECT_EQ(TC->toString(), "ij-ik-kj");
}

// --- error paths ---------------------------------------------------------

TEST(ContractionParseErrors, WrongOperandCount) {
  EXPECT_FALSE(Contraction::parseUniform("ab-cd", 4).hasValue());
  EXPECT_FALSE(Contraction::parseUniform("ab-cd-ef-gh", 4).hasValue());
}

TEST(ContractionParseErrors, EmptyOperand) {
  EXPECT_FALSE(Contraction::parseUniform("-ab-ab", 4).hasValue());
  EXPECT_FALSE(Contraction::parseUniform("ab--ab", 4).hasValue());
}

TEST(ContractionParseErrors, RepeatedIndexWithinTensor) {
  EXPECT_FALSE(Contraction::parseUniform("aa-ab-b", 4).hasValue());
}

TEST(ContractionParseErrors, InvalidIndexName) {
  EXPECT_FALSE(Contraction::parseUniform("aB-ab-B", 4).hasValue());
  EXPECT_FALSE(Contraction::parseUniform("a1-a1-1", 4).hasValue());
}

TEST(ContractionParseErrors, IndexInOnlyOneTensor) {
  // 'c' appears only in A.
  ErrorOr<Contraction> TC = Contraction::parseUniform("ab-ac-b", 4);
  ASSERT_FALSE(TC.hasValue());
  EXPECT_NE(TC.errorMessage().find("only one tensor"), std::string::npos);
}

TEST(ContractionParseErrors, BatchIndexRejected) {
  // 'a' appears in all three tensors.
  ErrorOr<Contraction> TC = Contraction::parseUniform("ab-ak-akb", 4);
  ASSERT_FALSE(TC.hasValue());
  EXPECT_NE(TC.errorMessage().find("all three"), std::string::npos);
}

TEST(ContractionParseErrors, MissingExtent) {
  ErrorOr<Contraction> TC =
      Contraction::parse("ij-ik-kj", {{'i', 4}, {'j', 4}});
  ASSERT_FALSE(TC.hasValue());
  EXPECT_NE(TC.errorMessage().find("no extent"), std::string::npos);
}

TEST(ContractionParseErrors, NonPositiveExtent) {
  EXPECT_FALSE(
      Contraction::parse("ij-ik-kj", {{'i', 4}, {'j', 0}, {'k', 4}})
          .hasValue());
  EXPECT_FALSE(
      Contraction::parse("ij-ik-kj", {{'i', 4}, {'j', -2}, {'k', 4}})
          .hasValue());
}

TEST(ContractionParseErrors, OverflowingExtentProduct) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce", {{'a', 2000000000},
                         {'b', 2000000000},
                         {'c', 2000000000},
                         {'d', 2000000000},
                         {'e', 2},
                         {'f', 2}});
  ASSERT_FALSE(TC.hasValue());
  EXPECT_NE(TC.errorMessage().find("64-bit"), std::string::npos);
}

// --- parameterized sweep over the whole TCCG suite -----------------------

class SuiteParse : public ::testing::TestWithParam<int> {};

TEST_P(SuiteParse, EveryIndexInExactlyTwoTensors) {
  const suite::SuiteEntry &Entry = suite::suiteEntry(GetParam());
  Contraction TC = Entry.contraction();
  for (char Name : TC.allIndices()) {
    int Count = TC.contains(Operand::A, Name) + TC.contains(Operand::B, Name) +
                TC.contains(Operand::C, Name);
    EXPECT_EQ(Count, 2) << Entry.Spec << " index " << Name;
  }
  EXPECT_EQ(TC.toString(), Entry.Spec);
}

INSTANTIATE_TEST_SUITE_P(Tccg, SuiteParse, ::testing::Range(1, 49));

} // namespace
