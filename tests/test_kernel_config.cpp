//===- tests/test_kernel_config.cpp - Table-II parameter tests -------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/KernelConfig.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::IndexTile;
using core::KernelConfig;
using ir::Contraction;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 16) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

KernelConfig fig2Config() {
  // Fig. 2 of the paper: {a}->Tx, {c}->Ty, {b}->Rx, {d}->Ry plus a staged
  // contraction tile.
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 8}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 4}, {'f', 2}};
  return Config;
}

TEST(KernelConfig, DerivedSizes) {
  KernelConfig Config = fig2Config();
  EXPECT_EQ(Config.tbxSize(), 16);
  EXPECT_EQ(Config.tbySize(), 8);
  EXPECT_EQ(Config.regXSize(), 4);
  EXPECT_EQ(Config.regYSize(), 2);
  EXPECT_EQ(Config.tbkSize(), 8);
  EXPECT_EQ(Config.threadsPerBlock(), 128);
  EXPECT_EQ(Config.yInput(), Operand::B);
}

TEST(KernelConfig, TileOfUnmappedIsOne) {
  KernelConfig Config = fig2Config();
  EXPECT_EQ(Config.tileOf('a'), 16);
  EXPECT_EQ(Config.tileOf('e'), 4);
  EXPECT_EQ(Config.tileOf('z'), 1);
  EXPECT_TRUE(Config.isMapped('b'));
  EXPECT_FALSE(Config.isMapped('z'));
}

TEST(KernelConfig, GridAndStepCounts) {
  Contraction TC = eq1(16);
  KernelConfig Config = fig2Config();
  // ceil(16/16) * ceil(16/4) * ceil(16/8) * ceil(16/2) = 1*4*2*8 = 64.
  EXPECT_EQ(Config.numThreadBlocks(TC), 64);
  // ceil(16/4) * ceil(16/2) = 4 * 8 = 32.
  EXPECT_EQ(Config.numSteps(TC), 32);
}

TEST(KernelConfig, GridCountsRoundUpRaggedExtents) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 17}, {'b', 5}, {'c', 9}, {'d', 3}, {'e', 6}, {'f', 3}});
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config = fig2Config();
  EXPECT_EQ(Config.numThreadBlocks(*TC), 2 * 2 * 2 * 2);
  EXPECT_EQ(Config.numSteps(*TC), 2 * 2);
}

TEST(KernelConfig, SmemFootprint) {
  KernelConfig Config = fig2Config();
  // (TBx*REGx + TBy*REGy) * TBk = (64 + 16) * 8 = 640 elements.
  EXPECT_EQ(Config.smemElements(), 640);
  EXPECT_EQ(Config.smemBytes(8), 5120);
  EXPECT_EQ(Config.smemBytes(4), 2560);
}

TEST(KernelConfig, RegisterEstimate) {
  KernelConfig Config = fig2Config();
  // (4*2 + 4 + 2) values * 2 regs (double) + 28 overhead.
  EXPECT_EQ(Config.registersPerThread(8), 14u * 2 + 28);
  EXPECT_EQ(Config.registersPerThread(4), 14u + 28);
}

TEST(KernelConfig, ValidatesCleanConfig) {
  Contraction TC = eq1();
  EXPECT_EQ(fig2Config().validate(TC), "");
}

TEST(KernelConfigValidate, RejectsDoubleMapping) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  Config.RegX.push_back({'b', 2}); // b already in RegX
  EXPECT_NE(Config.validate(TC).find("more than one"), std::string::npos);
}

TEST(KernelConfigValidate, RejectsTileOutOfRange) {
  Contraction TC = eq1(16);
  KernelConfig Config = fig2Config();
  Config.TBy[0].Tile = 32; // extent is 16
  EXPECT_NE(Config.validate(TC).find("tile > extent"), std::string::npos);
  Config.TBy[0].Tile = 0;
  EXPECT_NE(Config.validate(TC).find("tile < 1"), std::string::npos);
}

TEST(KernelConfigValidate, RejectsInternalOnThreadDims) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  Config.TBy.push_back({'e', 4});
  Config.TBk.clear();
  EXPECT_NE(Config.validate(TC).find("internal index"), std::string::npos);
}

TEST(KernelConfigValidate, RejectsExternalOnTBk) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  Config.TBk.push_back({'c', 4});
  Config.TBy.clear();
  EXPECT_NE(Config.validate(TC).find("external index"), std::string::npos);
}

TEST(KernelConfigValidate, RejectsWrongSideMapping) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  // 'c' belongs to B (the Y input) but is placed on RegX.
  Config.RegX = {{'c', 4}};
  Config.TBy = {{'d', 8}};
  Config.RegY.clear();
  EXPECT_NE(Config.validate(TC).find("does not belong"), std::string::npos);
}

TEST(KernelConfigValidate, RequiresOutputFviLeadingTBx) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  Config.TBx = {{'b', 4}}; // 'a' missing
  Config.RegX = {{'a', 4}};
  EXPECT_NE(Config.validate(TC).find("must start with"), std::string::npos);
}

TEST(KernelConfigValidate, RequiresXInputContainingOutputFvi) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  Config.XInput = Operand::B; // 'a' lives in A
  // The side-ownership rule fires first: TBx entries no longer belong to
  // the X input.
  EXPECT_FALSE(Config.validate(TC).empty());
}

TEST(KernelConfig, ToStringRendersAllLists) {
  KernelConfig Config = fig2Config();
  std::string Str = Config.toString();
  EXPECT_NE(Str.find("TBx[a:16]"), std::string::npos);
  EXPECT_NE(Str.find("TBk[e:4,f:2]"), std::string::npos);
  EXPECT_NE(Str.find("X=A"), std::string::npos);
}

} // namespace
