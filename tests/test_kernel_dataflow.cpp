//===- tests/test_kernel_dataflow.cpp - CFG + liveness framework ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KernelDataflow contract, from both directions:
///
///   - golden def-use/liveness fixtures over hand-written mini-kernels
///     (loop-carried definitions, guarded writes, barrier-separated
///     regions, disjoint staging buffers) pin the CFG shape and solver
///     verdicts to known-correct answers;
///   - every kernel the pipeline emits for the TCCG suite is dataflow-clean
///     on both device models — no dead stores, no undefined uses, no
///     redundant barriers — and its liveness-derived register pressure
///     agrees with planRegisterPressure within PressureToleranceRegs;
///   - enabling pressure-aware ranking never selects a plan the
///     PlanVerifier rejects.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelDataflow.h"
#include "core/Cogent.h"
#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "suite/TccgSuite.h"
#include "verify/PlanVerifier.h"

#include <gtest/gtest.h>

#include <string>

using namespace cogent;
using analysis::AccessKind;
using analysis::DataflowInfo;
using analysis::DefInfo;
using analysis::KernelModel;
using analysis::LocSpace;
using ir::Contraction;

namespace {

DataflowInfo analyze(const std::string &Source) {
  ErrorOr<KernelModel> Model = analysis::parseKernelSource(Source);
  EXPECT_TRUE(Model.hasValue()) << Model.errorMessage();
  ErrorOr<DataflowInfo> Flow = analysis::buildDataflow(*Model);
  EXPECT_TRUE(Flow.hasValue()) << Flow.errorMessage();
  return *Flow;
}

unsigned deadDefCount(const DataflowInfo &Flow) {
  unsigned N = 0;
  for (const DefInfo &D : Flow.Defs)
    N += D.Dead;
  return N;
}

std::string renderDeadDefs(const DataflowInfo &Flow) {
  std::string Out;
  for (const DefInfo &D : Flow.Defs)
    if (D.Dead)
      Out += Flow.Locations[D.Loc].Name + " at line " +
             std::to_string(D.Line) + "\n";
  return Out.empty() ? "<none>" : Out;
}

bool barrierRedundant(const DataflowInfo &Flow, unsigned Line) {
  for (const analysis::BarrierVerdict &V : Flow.Barriers)
    if (V.Line == Line)
      return V.Redundant;
  ADD_FAILURE() << "no verdict for barrier line " << Line;
  return false;
}

/// 1-based line of the first occurrence of \p Needle in \p Source.
unsigned lineOf(const std::string &Source, const std::string &Needle) {
  size_t Pos = Source.find(Needle);
  EXPECT_NE(Pos, std::string::npos) << Needle;
  unsigned Line = 1;
  for (size_t I = 0; I < Pos; ++I)
    Line += Source[I] == '\n';
  return Line;
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden fixtures
//===----------------------------------------------------------------------===//

TEST(KernelDataflow, LoopCarriedDefStaysLive) {
  const std::string Source = R"(__global__ void k(const double *g_A, double *g_C, const long long N_a) {
  int acc = 0;
  for (int i = 0; i < 8; ++i) {
    acc = acc + i;
  }
  g_C[acc] = g_A[acc];
}
)";
  DataflowInfo Flow = analyze(Source);
  // Both defs of acc are observed: the init feeds the first iteration
  // through the loop back edge, the in-loop def feeds both the next
  // iteration and the final store.
  EXPECT_EQ(deadDefCount(Flow), 0u) << renderDeadDefs(Flow);
  EXPECT_TRUE(Flow.UndefinedUses.empty());

  std::optional<unsigned> Acc = Flow.location("acc");
  ASSERT_TRUE(Acc.has_value());
  unsigned StoreLine = lineOf(Source, "g_C[acc]");
  unsigned CarryLine = lineOf(Source, "acc = acc + i");
  bool InitReachesCarry = false, CarryReachesStore = false;
  for (const DefInfo &D : Flow.Defs) {
    if (D.Loc != *Acc)
      continue;
    for (unsigned Use : D.UseLines) {
      InitReachesCarry |= D.Line == lineOf(Source, "int acc") &&
                          Use == CarryLine;
      CarryReachesStore |= D.Line == CarryLine && Use == StoreLine;
    }
  }
  EXPECT_TRUE(InitReachesCarry);
  EXPECT_TRUE(CarryReachesStore);
}

TEST(KernelDataflow, GuardedWriteMergesWithFallThrough) {
  const std::string Source = R"(__global__ void k(const double *g_A, double *g_C, const long long N_a) {
  int tid = threadIdx.x;
  int v = 0;
  if (tid < 4) {
    v = 1;
  }
  g_C[v] = g_A[tid];
}
)";
  DataflowInfo Flow = analyze(Source);
  // The guarded def does not kill the fall-through init: both defs of v
  // reach the store, so neither is dead.
  EXPECT_EQ(deadDefCount(Flow), 0u) << renderDeadDefs(Flow);
  EXPECT_TRUE(Flow.UndefinedUses.empty());

  std::optional<unsigned> V = Flow.location("v");
  ASSERT_TRUE(V.has_value());
  unsigned StoreLine = lineOf(Source, "g_C[v]");
  unsigned Reaching = 0;
  for (const DefInfo &D : Flow.Defs)
    if (D.Loc == *V)
      for (unsigned Use : D.UseLines)
        Reaching += Use == StoreLine;
  EXPECT_EQ(Reaching, 2u);
}

TEST(KernelDataflow, BarrierSeparatedRegionsGetPerBarrierVerdicts) {
  const std::string Source = R"(__global__ void k(const double *g_A, double *g_C, const long long N_a) {
  __shared__ double s_T[32];
  int tid = threadIdx.x;
  s_T[tid] = g_A[tid];
  __syncthreads();
  g_C[tid] = s_T[tid];
  __syncthreads();
}
)";
  DataflowInfo Flow = analyze(Source);
  ASSERT_EQ(Flow.Barriers.size(), 2u);
  // The first barrier orders the staging write against the cross-thread
  // read; the trailing barrier orders nothing.
  unsigned First = lineOf(Source, "__syncthreads");
  EXPECT_FALSE(barrierRedundant(Flow, First));
  EXPECT_TRUE(barrierRedundant(Flow, First + 2));

  ASSERT_EQ(Flow.SmemLifetimes.size(), 1u);
  EXPECT_TRUE(Flow.SmemLifetimes[0].Written);
  EXPECT_TRUE(Flow.SmemLifetimes[0].Read);
  EXPECT_FALSE(Flow.DisjointSmemStaging);
}

TEST(KernelDataflow, DeadAndShadowedScalarsAreFlagged) {
  const std::string Source = R"(__global__ void k(const double *g_A, double *g_C, const long long N_a) {
  int tid = threadIdx.x;
  int unused = tid;
  int x = tid;
  x = 5;
  g_C[x] = g_A[tid];
}
)";
  DataflowInfo Flow = analyze(Source);
  ASSERT_EQ(deadDefCount(Flow), 2u) << renderDeadDefs(Flow);

  std::optional<unsigned> Unused = Flow.location("unused");
  std::optional<unsigned> X = Flow.location("x");
  ASSERT_TRUE(Unused.has_value());
  ASSERT_TRUE(X.has_value());
  // 'unused' is never read at all; the first def of 'x' is shadowed by
  // the reassignment before any use.
  EXPECT_EQ(Flow.useCount(*Unused), 0u);
  EXPECT_GT(Flow.useCount(*X), 0u);
  for (const DefInfo &D : Flow.Defs) {
    if (D.Loc == *Unused)
      EXPECT_TRUE(D.Dead);
    if (D.Loc == *X)
      EXPECT_EQ(D.Dead, D.Line == lineOf(Source, "int x"));
  }
}

TEST(KernelDataflow, DisjointStagingBuffersAreReported) {
  const std::string Source = R"(__global__ void k(const double *g_A, double *g_C, const long long N_a) {
  __shared__ double s_A[16];
  __shared__ double s_B[16];
  int tid = threadIdx.x;
  s_A[tid] = g_A[tid];
  __syncthreads();
  g_C[tid] = s_A[tid];
  __syncthreads();
  s_B[tid] = g_A[tid];
  __syncthreads();
  g_C[tid] = s_B[tid];
}
)";
  DataflowInfo Flow = analyze(Source);
  ASSERT_EQ(Flow.SmemLifetimes.size(), 2u);
  for (const analysis::SmemBufferLifetime &L : Flow.SmemLifetimes) {
    EXPECT_TRUE(L.Written) << Flow.Locations[L.Loc].Name;
    EXPECT_TRUE(L.Read) << Flow.Locations[L.Loc].Name;
  }
  // s_A's last read precedes s_B's first write: the buffers could share
  // storage.
  EXPECT_TRUE(Flow.DisjointSmemStaging);
}

TEST(KernelDataflow, ExplainRendersTheAnalysis) {
  const std::string Source = R"(__global__ void k(const double *g_A, double *g_C, const long long N_a) {
  __shared__ double s_T[32];
  int tid = threadIdx.x;
  s_T[tid] = g_A[tid];
  __syncthreads();
  g_C[tid] = s_T[tid];
}
)";
  ErrorOr<KernelModel> Model = analysis::parseKernelSource(Source);
  ASSERT_TRUE(Model.hasValue());
  ErrorOr<DataflowInfo> Flow = analysis::buildDataflow(*Model);
  ASSERT_TRUE(Flow.hasValue());
  std::string Text = analysis::explainDataflow(*Model, *Flow);
  EXPECT_NE(Text.find("CFG"), std::string::npos);
  EXPECT_NE(Text.find("register pressure"), std::string::npos);
  EXPECT_NE(Text.find("s_T"), std::string::npos);
  EXPECT_NE(Text.find("barriers"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Whole-suite invariants
//===----------------------------------------------------------------------===//

TEST(KernelDataflow, SeedSuiteIsDataflowCleanOnBothDevices) {
  for (const gpu::DeviceSpec &Device : {gpu::makeP100(), gpu::makeV100()}) {
    core::Cogent Generator(Device);
    for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
      Contraction TC = Entry.contractionScaled(24);
      ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
      ASSERT_TRUE(Result.hasValue()) << Entry.Name;
      const core::GeneratedKernel &Kernel = Result->best();

      ErrorOr<KernelModel> Model =
          analysis::parseKernelSource(Kernel.Source.KernelSource);
      ASSERT_TRUE(Model.hasValue()) << Entry.Name;
      ErrorOr<DataflowInfo> Flow = analysis::buildDataflow(*Model);
      ASSERT_TRUE(Flow.hasValue()) << Entry.Name;

      EXPECT_EQ(deadDefCount(*Flow), 0u)
          << Entry.Name << " on " << Device.Name << ":\n"
          << renderDeadDefs(*Flow);
      EXPECT_TRUE(Flow->UndefinedUses.empty())
          << Entry.Name << " on " << Device.Name;
      for (const analysis::BarrierVerdict &V : Flow->Barriers)
        EXPECT_FALSE(V.Redundant)
            << Entry.Name << " on " << Device.Name << " barrier line "
            << V.Line;

      // The source-side pressure estimate tracks the plan-side analytic
      // one within the documented tolerance across the whole suite.
      const Contraction &PlanTC =
          Result->Fallback == core::FallbackLevel::TtgtBaseline
              ? *Result->FallbackContraction
              : TC;
      core::KernelPlan Plan(PlanTC, Kernel.Config);
      unsigned PlanEstimate = core::planRegisterPressure(Plan, 8);
      unsigned SourceEstimate = Flow->pressure();
      unsigned Delta = PlanEstimate > SourceEstimate
                           ? PlanEstimate - SourceEstimate
                           : SourceEstimate - PlanEstimate;
      EXPECT_LE(Delta, analysis::PressureToleranceRegs)
          << Entry.Name << " on " << Device.Name << ": plan " << PlanEstimate
          << " vs source " << SourceEstimate;
      // The always-on reporting half surfaced the same number through the
      // lint report into the generated kernel.
      EXPECT_EQ(Kernel.SourcePressure, SourceEstimate) << Entry.Name;
      EXPECT_EQ(Kernel.PlanPressure, PlanEstimate) << Entry.Name;
    }
  }
}

TEST(KernelDataflow, PressureRankingSelectsOnlyVerifiedPlans) {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  verify::PlanVerifier Verifier(Device, 8);
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    Contraction TC = Entry.contractionScaled(24);
    core::CogentOptions Options;
    Options.PressureAwareRanking = true;
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    ASSERT_TRUE(Result.hasValue()) << Entry.Name;
    EXPECT_TRUE(Result->PressureRanking);
    const Contraction &PlanTC =
        Result->Fallback == core::FallbackLevel::TtgtBaseline
            ? *Result->FallbackContraction
            : TC;
    for (const core::GeneratedKernel &Kernel : Result->Kernels) {
      core::KernelPlan Plan(PlanTC, Kernel.Config);
      EXPECT_TRUE(Verifier.verifyPlan(Plan).hasValue()) << Entry.Name;
    }
    // The metrics JSON is self-describing about the ranking mode.
    std::string Json = core::renderMetricsJson(TC, *Result, Device);
    EXPECT_NE(Json.find("\"pressure_ranking\":true"), std::string::npos);
    EXPECT_NE(Json.find("\"register_pressure_plan\""), std::string::npos);
  }
}

TEST(KernelDataflow, PlanPressureScalesWithOrderUnderTheCap) {
  // The analytic estimate prices the index arithmetic per tensor
  // dimension, so a rank-6 contraction costs more than a rank-2 one for
  // comparable tiles — but never exceeds the shared 512-register cap.
  core::Cogent Generator(gpu::makeV100());
  Contraction Small = *Contraction::parseUniform("ab-ac-cb", 32);
  Contraction Large = *Contraction::parseUniform("abcdef-gdab-efgc", 8);
  ErrorOr<core::GenerationResult> SmallR = Generator.generate(Small);
  ErrorOr<core::GenerationResult> LargeR = Generator.generate(Large);
  ASSERT_TRUE(SmallR.hasValue());
  ASSERT_TRUE(LargeR.hasValue());
  unsigned SmallP = SmallR->best().PlanPressure;
  unsigned LargeP = LargeR->best().PlanPressure;
  EXPECT_GT(SmallP, 28u); // More than the flat bookkeeping floor.
  EXPECT_LE(SmallP, 512u);
  EXPECT_GT(LargeP, 28u);
  EXPECT_LE(LargeP, 512u);
}
