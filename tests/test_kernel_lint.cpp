//===- tests/test_kernel_lint.cpp - KernelLint + mutation corpus ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KernelLint contract, proven from both sides:
///
///   - every clean emission lints clean in strict mode (the whole TCCG seed
///     suite on both device models), so the strict pipeline gate never
///     rejects a healthy kernel;
///   - every SourceMutator corruption of a real kernel is caught by the
///     pass designed for it — the kill matrix — with at least three
///     distinct kills per pass, so a pass that silently stops firing fails
///     the suite rather than degrading into a no-op;
///   - the Coalescing pass's quantitative half (predictTransactions)
///     matches gpu::simulateKernel transaction-for-transaction on the seed
///     suite, not merely approximately.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "analysis/SourceMutator.h"
#include "core/CodeGen.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/JsonWriter.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace cogent;
using analysis::LintFinding;
using analysis::LintMode;
using analysis::LintOptions;
using analysis::LintPass;
using analysis::LintReport;
using analysis::MutationKind;
using ir::Contraction;
using ir::Operand;

namespace {

/// The corpus kernel: a contraction whose winning V100 mapping uses both
/// register-tile dimensions (REGX=2, REGY=6), so every MutationKind —
/// including ShrinkRegTile, which is a semantic no-op when REGY == 1 —
/// changes evaluated behavior, not just text.
struct Corpus {
  Contraction TC;
  core::KernelPlan Plan;
  std::string Source;
};

Corpus makeCorpus() {
  Contraction TC = *Contraction::parseUniform("abcd-aebf-dfce", 24);
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  EXPECT_TRUE(Result.hasValue());
  core::KernelConfig Config = Result->best().Config;
  // The kill matrix needs a two-dimensional register tile; if the search
  // ever stops picking one here, the corpus must move to a spec that does.
  EXPECT_GT(Config.regXSize(), 1) << Config.toString();
  EXPECT_GT(Config.regYSize(), 1) << Config.toString();
  core::KernelPlan Plan(TC, Config);
  return Corpus{TC, Plan, core::emitCuda(Plan).KernelSource};
}

/// Expected primary kill for each MutationKind (the pass the corruption
/// was designed to trip; other passes may fire too).
const std::vector<std::pair<MutationKind, LintPass>> &killMatrix() {
  static const std::vector<std::pair<MutationKind, LintPass>> Matrix = {
      {MutationKind::DropFirstBarrier, LintPass::BarrierPlacement},
      {MutationKind::DropSecondBarrier, LintPass::BarrierPlacement},
      {MutationKind::DivergentBarrier, LintPass::BarrierPlacement},
      {MutationKind::DivergentBarrierThread, LintPass::BarrierPlacement},
      {MutationKind::SkewSmemReadStride, LintPass::BankConflict},
      {MutationKind::SkewSmemWriteStride, LintPass::BankConflict},
      {MutationKind::DropSmemTerm, LintPass::BankConflict},
      {MutationKind::SkewGmemStride, LintPass::Coalescing},
      {MutationKind::SwapGmemStrideVar, LintPass::Coalescing},
      {MutationKind::WrongBaseVar, LintPass::Coalescing},
      {MutationKind::SkewStoreStride, LintPass::Coalescing},
      {MutationKind::DropLoadGuard, LintPass::BoundsCheck},
      {MutationKind::WidenDecodeModulus, LintPass::BoundsCheck},
      {MutationKind::DropStoreGuard, LintPass::BoundsCheck},
      {MutationKind::ShrinkSmemDecl, LintPass::ResourceDecl},
      {MutationKind::SkewDefineRegX, LintPass::ResourceDecl},
      {MutationKind::SkewDefineNthreads, LintPass::ResourceDecl},
      {MutationKind::ShrinkRegTile, LintPass::ResourceDecl},
      {MutationKind::DuplicateFirstBarrier, LintPass::RedundantBarrier},
      {MutationKind::DuplicateSecondBarrier, LintPass::RedundantBarrier},
      {MutationKind::InjectStoreBarrier, LintPass::RedundantBarrier},
      {MutationKind::InjectUnusedDecl, LintPass::DeadStore},
      {MutationKind::InjectDeadStore, LintPass::DeadStore},
      {MutationKind::ShadowDecodeResult, LintPass::DeadStore},
      {MutationKind::InflateRegTileC, LintPass::RegisterPressure},
      {MutationKind::InflateRegTileA, LintPass::RegisterPressure},
      {MutationKind::InflateRegTileB, LintPass::RegisterPressure},
      {MutationKind::RetargetComputeReadA, LintPass::SmemLifetime},
      {MutationKind::RetargetComputeReadB, LintPass::SmemLifetime},
      {MutationKind::RetargetStagingStore, LintPass::SmemLifetime},
      {MutationKind::TaintBlockBase, LintPass::Uniformity},
      {MutationKind::TaintStepBase, LintPass::Uniformity},
      {MutationKind::TaintStepCount, LintPass::Uniformity},
      {MutationKind::UniformizeSliceInit, LintPass::RaceFreedom},
      {MutationKind::CollapseSmemWriteStride, LintPass::RaceFreedom},
      {MutationKind::DropStoreCoordinate, LintPass::RaceFreedom},
      {MutationKind::GuardBarrierOddTid, LintPass::BarrierUniformity},
      {MutationKind::GuardBarrierHalfTile, LintPass::BarrierUniformity},
      {MutationKind::DivergeStepLoop, LintPass::BarrierUniformity},
  };
  return Matrix;
}

bool hasErrorFromPass(const LintReport &Report, LintPass Pass) {
  for (const LintFinding &F : Report.Findings)
    if (F.Pass == Pass && F.Severity == analysis::LintSeverity::Error)
      return true;
  return false;
}

std::string renderAll(const LintReport &Report) {
  std::string Out;
  for (const LintFinding &F : Report.Findings)
    Out += F.render() + "\n";
  return Out.empty() ? "<no findings>" : Out;
}

TEST(KernelLint, CorpusKernelLintsClean) {
  Corpus C = makeCorpus();
  LintReport Report = analysis::lintKernel(C.Plan, C.Source);
  EXPECT_TRUE(Report.clean()) << renderAll(Report);
}

TEST(KernelLint, MutationCorpusKillMatrix) {
  Corpus C = makeCorpus();
  ASSERT_EQ(killMatrix().size(), analysis::NumMutationKinds);

  std::map<LintPass, unsigned> KillsPerPass;
  for (const auto &[Kind, ExpectedPass] : killMatrix()) {
    std::string Mutated = analysis::applyMutation(C.Source, Kind);
    ASSERT_NE(Mutated, C.Source)
        << analysis::mutationKindName(Kind)
        << ": mutation pattern absent from the corpus kernel";
    LintReport Report = analysis::lintKernel(C.Plan, Mutated);
    EXPECT_GT(Report.errorCount(), 0u)
        << analysis::mutationKindName(Kind) << " survived lint";
    EXPECT_TRUE(hasErrorFromPass(Report, ExpectedPass))
        << analysis::mutationKindName(Kind) << " expected a "
        << analysis::lintPassName(ExpectedPass) << " error, got:\n"
        << renderAll(Report);
    if (hasErrorFromPass(Report, ExpectedPass))
      ++KillsPerPass[ExpectedPass];
  }

  // Each semantic pass must have at least three distinct kills, so one
  // broken transform cannot mask a pass that stopped firing.
  for (LintPass Pass :
       {LintPass::BarrierPlacement, LintPass::BankConflict,
        LintPass::Coalescing, LintPass::BoundsCheck, LintPass::ResourceDecl,
        LintPass::RegisterPressure, LintPass::RedundantBarrier,
        LintPass::DeadStore, LintPass::SmemLifetime, LintPass::Uniformity,
        LintPass::RaceFreedom, LintPass::BarrierUniformity})
    EXPECT_GE(KillsPerPass[Pass], 3u) << analysis::lintPassName(Pass);
}

TEST(KernelLint, TruncationIsAStructureError) {
  Corpus C = makeCorpus();
  std::string Truncated = C.Source.substr(0, C.Source.size() / 2);
  LintReport Report = analysis::lintKernel(C.Plan, Truncated);
  EXPECT_TRUE(hasErrorFromPass(Report, LintPass::Structure))
      << renderAll(Report);
}

TEST(KernelLint, OffModeSkipsEvenMutatedSources) {
  Corpus C = makeCorpus();
  std::string Mutated =
      analysis::applyMutation(C.Source, MutationKind::DropFirstBarrier);
  ASSERT_NE(Mutated, C.Source);
  LintOptions Off;
  Off.Mode = LintMode::Off;
  EXPECT_TRUE(analysis::lintKernel(C.Plan, Mutated, Off).clean());
}

TEST(KernelLint, WarnModeRecordsWithoutRejecting) {
  // In Warn mode the pipeline must never demote: a healthy run reports
  // zero rejections and zero findings, and the result is still ranked.
  Contraction TC = *Contraction::parseUniform("ab-ac-cb", 32);
  core::CogentOptions Options;
  Options.Lint.Mode = LintMode::Warn;
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Result->LintRejections, 0u);
  EXPECT_TRUE(Result->LintFindings.empty());
}

TEST(KernelLint, SeedSuiteLintsCleanStrictOnBothDevices) {
  // The clean-kernel guarantee at pipeline level: generating every TCCG
  // entry with the strict gate live (the default) must reject nothing —
  // findings here would mean the analyzer flags layout the emitter
  // legitimately produces.
  for (const gpu::DeviceSpec &Device : {gpu::makeP100(), gpu::makeV100()}) {
    core::Cogent Generator(Device);
    for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
      ErrorOr<core::GenerationResult> Result =
          Generator.generate(Entry.contraction());
      ASSERT_TRUE(Result.hasValue()) << Entry.Name << " on " << Device.Name;
      EXPECT_EQ(Result->LintRejections, 0u)
          << Entry.Name << " on " << Device.Name;
      EXPECT_TRUE(Result->LintFindings.empty())
          << Entry.Name << " on " << Device.Name << ":\n"
          << renderAll(LintReport{Result->LintFindings});
    }
  }
}

TEST(KernelLint, PredictedTransactionsMatchSimulatorSpotCheck) {
  // One-entry fast diff of predictTransactions against gpu::simulateKernel;
  // the full 48-entry sweep lives in test_lint_traffic (slow lane).
  core::Cogent Generator(gpu::makeV100());
  const suite::SuiteEntry &Entry = suite::tccgSuite().front();
  Contraction TC = Entry.contraction();
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue()) << Entry.Name;

  std::vector<std::pair<char, int64_t>> Extents;
  for (char Name : TC.allIndices())
    Extents.emplace_back(Name, std::min<int64_t>(TC.extent(Name), 8));
  ErrorOr<Contraction> Small = Contraction::parse(TC.toString(), Extents);
  ASSERT_TRUE(Small.hasValue()) << Entry.Name;
  core::KernelConfig Clamped = Result->best().Config.clampedTo(*Small);
  core::KernelPlan Plan(*Small, Clamped);
  std::string Source = core::emitCuda(Plan).KernelSource;

  ErrorOr<analysis::TrafficPrediction> Predicted =
      analysis::predictTransactions(Plan, Source);
  ASSERT_TRUE(Predicted.hasValue())
      << Entry.Name << ": " << Predicted.errorMessage();

  Rng Gen(0xbe7c + static_cast<uint64_t>(Entry.Id));
  tensor::Tensor<double> A = tensor::makeOperand<double>(*Small, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(*Small, Operand::B);
  A.fillRandom(Gen);
  B.fillRandom(Gen);
  tensor::Tensor<double> C = tensor::makeOperand<double>(*Small, Operand::C);
  gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);

  EXPECT_EQ(Predicted->TransactionsA, Sim.TransactionsA) << Entry.Name;
  EXPECT_EQ(Predicted->TransactionsB, Sim.TransactionsB) << Entry.Name;
  EXPECT_EQ(Predicted->TransactionsC, Sim.TransactionsC) << Entry.Name;
}

TEST(KernelLint, DoubleBufferedSourceIsATypedPredictionError) {
  Corpus C = makeCorpus();
  core::CodeGenOptions Options;
  Options.DoubleBuffer = true;
  std::string Source = core::emitCuda(C.Plan, Options).KernelSource;
  ErrorOr<analysis::TrafficPrediction> Predicted =
      analysis::predictTransactions(C.Plan, Source);
  ASSERT_FALSE(Predicted.hasValue());
  EXPECT_EQ(Predicted.errorCode(), ErrorCode::VerificationFailed);
  EXPECT_FALSE(Predicted.errorMessage().empty());
}

TEST(KernelLint, StrictGateKeepsMetricsJsonWellFormed) {
  // Findings land verbatim in the metrics JSON; messages with quotes,
  // backslashes and newlines must survive serialization.
  Contraction TC = *Contraction::parseUniform("ab-ac-cb", 32);
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());

  LintFinding Hostile;
  Hostile.Pass = LintPass::BankConflict;
  Hostile.Severity = analysis::LintSeverity::Warning;
  Hostile.Line = 12;
  Hostile.Message = "stride \"s_A\" \\ mismatch\nsecond line";
  Result->LintFindings.push_back(Hostile);
  Result->LintRejections = 2;

  std::string Json =
      core::renderMetricsJson(TC, *Result, gpu::makeV100());
  std::string Err;
  EXPECT_TRUE(support::validateJson(Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"lint_findings\""), std::string::npos);
  EXPECT_NE(Json.find("\"lint_rejections\":2"), std::string::npos);
  EXPECT_NE(Json.find("bank-conflict"), std::string::npos);
}

TEST(KernelLint, NameTablesRoundTrip) {
  for (unsigned I = 0; I < analysis::NumLintPasses; ++I) {
    LintPass Pass = static_cast<LintPass>(I);
    std::string Name = analysis::lintPassName(Pass);
    EXPECT_FALSE(Name.empty());
    auto Back = analysis::lintPassFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Pass);
  }
  EXPECT_FALSE(analysis::lintPassFromName("no-such-pass").has_value());

  for (LintMode Mode : {LintMode::Off, LintMode::Warn, LintMode::Strict}) {
    std::string Name = analysis::lintModeName(Mode);
    auto Back = analysis::lintModeFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Mode);
  }
  EXPECT_FALSE(analysis::lintModeFromName("loose").has_value());

  std::vector<std::string> Names;
  for (unsigned I = 0; I < analysis::NumMutationKinds; ++I) {
    MutationKind Kind = static_cast<MutationKind>(I);
    std::string Name = analysis::mutationKindName(Kind);
    EXPECT_FALSE(Name.empty());
    for (const std::string &Seen : Names)
      EXPECT_NE(Seen, Name);
    Names.push_back(Name);
    // The chaos codegen-mutate site draws kinds through this round-trip;
    // a missing table entry would silently disable that mutation.
    auto Back = analysis::mutationKindFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Kind);
  }
  EXPECT_FALSE(analysis::mutationKindFromName("no-such-kind").has_value());
}

TEST(KernelLint, ExplainLintDescribesTheKernel) {
  // A small plan keeps the explain dump's traffic replay cheap; the
  // structure it describes is the same at any extent.
  Contraction TC = *Contraction::parseUniform("ab-ac-cb", 8);
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  core::KernelPlan Plan(TC, Result->best().Config);
  std::string Source = core::emitCuda(Plan).KernelSource;
  std::string Explanation = analysis::explainLint(Plan, Source);
  EXPECT_NE(Explanation.find("barrier"), std::string::npos) << Explanation;
  EXPECT_NE(Explanation.find("s_A"), std::string::npos) << Explanation;
}

} // namespace
