//===- tests/test_kernel_plan.cpp - Plan-lowering tests --------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/KernelPlan.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::CoordRole;
using core::IndexTile;
using core::KernelConfig;
using core::KernelPlan;
using core::SliceDim;
using ir::Contraction;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 16) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

KernelConfig fig2Config() {
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 8}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 4}, {'f', 2}};
  return Config;
}

TEST(DecodeMixedRadix, FirstEntryFastest) {
  std::vector<IndexTile> List = {{'x', 3}, {'y', 4}};
  EXPECT_EQ(core::decodeMixedRadix(0, List),
            (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(core::decodeMixedRadix(1, List),
            (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(core::decodeMixedRadix(3, List),
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(core::decodeMixedRadix(11, List),
            (std::vector<int64_t>{2, 3}));
}

TEST(DecodeMixedRadix, EmptyList) {
  EXPECT_TRUE(core::decodeMixedRadix(0, {}).empty());
}

TEST(KernelPlan, Sizes) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  EXPECT_EQ(Plan.tbX(), 16);
  EXPECT_EQ(Plan.tbY(), 8);
  EXPECT_EQ(Plan.regX(), 4);
  EXPECT_EQ(Plan.regY(), 2);
  EXPECT_EQ(Plan.tbk(), 8);
  EXPECT_EQ(Plan.threadsPerBlock(), 128);
  EXPECT_EQ(Plan.numBlocks(), 64);
  EXPECT_EQ(Plan.numSteps(), 32);
}

TEST(KernelPlan, GridDimsFollowCOrder) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  const std::vector<core::PlanDim> &Grid = Plan.gridDims();
  ASSERT_EQ(Grid.size(), 4u);
  EXPECT_EQ(Grid[0].Name, 'a');
  EXPECT_EQ(Grid[0].Tile, 16);
  EXPECT_EQ(Grid[0].NumTiles, 1);
  EXPECT_EQ(Grid[1].Name, 'b');
  EXPECT_EQ(Grid[1].NumTiles, 4);
  EXPECT_EQ(Grid[3].Name, 'd');
  EXPECT_EQ(Grid[3].NumTiles, 8);
}

TEST(KernelPlan, StepDimsFollowAOrder) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  const std::vector<core::PlanDim> &Steps = Plan.stepDims();
  ASSERT_EQ(Steps.size(), 2u);
  EXPECT_EQ(Steps[0].Name, 'e');
  EXPECT_EQ(Steps[0].NumTiles, 4);
  EXPECT_EQ(Steps[1].Name, 'f');
  EXPECT_EQ(Steps[1].NumTiles, 8);
}

TEST(KernelPlan, SliceDimsCarryRolesAndStrides) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  // A = [a, e, b, f]: roles ThreadX, Step, RegX, Step.
  const std::vector<SliceDim> &SliceA = Plan.sliceDims(Operand::A);
  ASSERT_EQ(SliceA.size(), 4u);
  EXPECT_EQ(SliceA[0].Name, 'a');
  EXPECT_EQ(SliceA[0].Role, CoordRole::ThreadX);
  EXPECT_EQ(SliceA[0].GlobalStride, 1);
  EXPECT_EQ(SliceA[0].SmemStride, 1);
  EXPECT_EQ(SliceA[1].Name, 'e');
  EXPECT_EQ(SliceA[1].Role, CoordRole::Step);
  EXPECT_EQ(SliceA[1].RolePos, 0u);
  EXPECT_EQ(SliceA[1].GlobalStride, 16);
  // Staging layout: thread dims fastest (a: 1), then register dims
  // (b: 16), then staged contraction dims in tensor order (e: 64, f: 256).
  EXPECT_EQ(SliceA[1].SmemStride, 64);
  EXPECT_EQ(SliceA[2].Name, 'b');
  EXPECT_EQ(SliceA[2].Role, CoordRole::RegX);
  EXPECT_EQ(SliceA[2].SmemStride, 16);
  EXPECT_EQ(SliceA[3].Name, 'f');
  EXPECT_EQ(SliceA[3].RolePos, 1u);
  EXPECT_EQ(SliceA[3].SmemStride, 256);
  // B = [d, f, c, e]: roles RegY, Step, ThreadY, Step.
  const std::vector<SliceDim> &SliceB = Plan.sliceDims(Operand::B);
  EXPECT_EQ(SliceB[0].Role, CoordRole::RegY);
  EXPECT_EQ(SliceB[2].Role, CoordRole::ThreadY);
}

TEST(KernelPlan, SliceElements) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  // A slice: 16 (a) * 4 (e) * 4 (b) * 2 (f) = 512.
  EXPECT_EQ(Plan.sliceElements(Operand::A), 512);
  // B slice: 2 (d) * 2 (f) * 8 (c) * 4 (e) = 128.
  EXPECT_EQ(Plan.sliceElements(Operand::B), 128);
  EXPECT_EQ(Plan.sliceElements(Operand::A) + Plan.sliceElements(Operand::B),
            fig2Config().smemElements());
}

TEST(KernelPlan, ContiguousRunStopsAtPartialTile) {
  Contraction TC = eq1(16);
  KernelPlan Plan(TC, fig2Config());
  // A: tile(a) = 16 == extent, tile(e) = 4 < 16 -> run = 16 * 4.
  EXPECT_EQ(Plan.contiguousRun(Operand::A), 64);
  // B: tile(d) = 2 < 16 -> run stops immediately at 2.
  EXPECT_EQ(Plan.contiguousRun(Operand::B), 2);
  // C: tile(a) = 16 == extent, tile(b) = 4 < 16 -> 64.
  EXPECT_EQ(Plan.contiguousRunC(), 64);
}

TEST(KernelPlan, ContiguousRunFullTensor) {
  Contraction TC = eq1(4);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.RegX = {{'b', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegY = {{'d', 4}};
  Config.TBk = {{'e', 4}, {'f', 4}};
  KernelPlan Plan(TC, Config);
  // Every tile covers its full extent: the whole slice is contiguous.
  EXPECT_EQ(Plan.contiguousRun(Operand::A), 4 * 4 * 4 * 4);
  EXPECT_EQ(Plan.numBlocks(), 1);
  EXPECT_EQ(Plan.numSteps(), 1);
}

TEST(KernelPlan, UnmappedDimsAreFixedWithTileOne) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abc-acd-db", 8);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 8}};
  Config.TBy = {{'b', 8}};
  Config.TBk = {{'d', 8}};
  // 'c' is unmapped.
  KernelPlan Plan(*TC, Config);
  const std::vector<SliceDim> &SliceA = Plan.sliceDims(Operand::A);
  ASSERT_EQ(SliceA.size(), 3u);
  EXPECT_EQ(SliceA[1].Name, 'c');
  EXPECT_EQ(SliceA[1].Role, CoordRole::Fixed);
  EXPECT_EQ(SliceA[1].Tile, 1);
  EXPECT_EQ(Plan.numBlocks(), 8); // one block per value of c
}

TEST(KernelPlan, StoreDimsCoverEveryOutputIndex) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  const std::vector<core::StoreDim> &Stores = Plan.storeDims();
  ASSERT_EQ(Stores.size(), 4u);
  EXPECT_EQ(Stores[0].Name, 'a');
  EXPECT_EQ(Stores[0].Role, CoordRole::ThreadX);
  EXPECT_EQ(Stores[1].Role, CoordRole::RegX);
  EXPECT_EQ(Stores[2].Role, CoordRole::ThreadY);
  EXPECT_EQ(Stores[3].Role, CoordRole::RegY);
  EXPECT_EQ(Stores[3].GlobalStride, 16 * 16 * 16);
}

} // namespace
