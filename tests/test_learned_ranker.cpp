//===- tests/test_learned_ranker.cpp - §VI learned-selection tests ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/LearnedRanker.h"

#include "core/Enumerator.h"
#include "gpu/KernelSimulator.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cogent;
using gpu::LearnedRanker;
using ir::Contraction;
using ir::Operand;

namespace {

TEST(LearnedRanker, FeaturesAreFiniteAndSized) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 16);
  ASSERT_TRUE(TC.hasValue());
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Enumerator Enum(*TC, Device);
  std::vector<core::KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  core::KernelPlan Plan(*TC, Configs.front());
  std::vector<double> Features = LearnedRanker::featuresOf(Plan, Device, 8);
  ASSERT_EQ(Features.size(), LearnedRanker::NumFeatures);
  EXPECT_DOUBLE_EQ(Features[0], 1.0); // bias
  for (double F : Features)
    EXPECT_TRUE(std::isfinite(F));
}

TEST(LearnedRanker, RidgeRecoversLinearFunction) {
  // y = 3 + 2*x1 - x2 with the remaining features inert.
  Rng Generator(17);
  std::vector<std::vector<double>> Samples;
  std::vector<double> Targets;
  for (int I = 0; I < 200; ++I) {
    std::vector<double> X(LearnedRanker::NumFeatures, 0.0);
    X[0] = 1.0;
    for (size_t J = 1; J < X.size(); ++J)
      X[J] = Generator.uniformReal(-2, 2);
    Samples.push_back(X);
    Targets.push_back(3.0 + 2.0 * X[1] - X[2]);
  }
  LearnedRanker Ranker;
  Ranker.train(Samples, Targets, /*Ridge=*/1e-8);
  ASSERT_TRUE(Ranker.isTrained());
  // Weights live in standardized feature space; verify via predictions.
  for (int I = 0; I < 20; ++I) {
    std::vector<double> Probe(LearnedRanker::NumFeatures, 0.0);
    Probe[0] = 1.0;
    for (size_t J = 1; J < Probe.size(); ++J)
      Probe[J] = Generator.uniformReal(-2, 2);
    EXPECT_NEAR(Ranker.predict(Probe), 3.0 + 2.0 * Probe[1] - Probe[2],
                1e-3);
  }
}

TEST(LearnedRanker, FitFromSimulationPredictsUsefully) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcdef-gdab-efgc", 16);
  ASSERT_TRUE(TC.hasValue());
  gpu::DeviceSpec Device = gpu::makeV100();
  LearnedRanker Ranker = LearnedRanker::fitFromSimulation(
      *TC, Device, 8, /*MaxSamples=*/24, /*MeasureExtent=*/8);
  ASSERT_TRUE(Ranker.isTrained());

  // Out-of-sample check at the measurement size: the prediction must
  // correlate positively with fresh simulated measurements.
  ErrorOr<Contraction> Small =
      Contraction::parseUniform("abcdef-gdab-efgc", 8);
  ASSERT_TRUE(Small.hasValue());
  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  core::Enumerator Enum(*Small, Device, Options);
  std::vector<core::KernelConfig> Configs = Enum.enumerate();

  Rng Generator(4242); // different data than the training fill
  tensor::Tensor<double> A = tensor::makeOperand<double>(*Small, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(*Small, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> C = tensor::makeOperand<double>(*Small, Operand::C);

  gpu::Calibration Calib = gpu::makeCalibration(Device);
  std::vector<double> Predicted, Measured;
  size_t Stride = std::max<size_t>(1, Configs.size() / 16);
  for (size_t I = 7; I < Configs.size(); I += Stride) { // offset sample
    core::KernelPlan Plan(*Small, Configs[I]);
    Predicted.push_back(
        Ranker.predict(LearnedRanker::featuresOf(Plan, Device, 8)));
    gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);
    gpu::KernelProfile Profile = gpu::makeProfileFromSim(Plan, Device, 8, Sim);
    Measured.push_back(
        std::log(gpu::estimateKernelTime(Device, Calib, Profile).Gflops));
  }
  ASSERT_GE(Predicted.size(), 8u);
  // Pearson correlation of predictions vs measurements.
  double MeanP = 0, MeanM = 0;
  for (size_t I = 0; I < Predicted.size(); ++I) {
    MeanP += Predicted[I];
    MeanM += Measured[I];
  }
  MeanP /= Predicted.size();
  MeanM /= Measured.size();
  double Num = 0, DP = 0, DM = 0;
  for (size_t I = 0; I < Predicted.size(); ++I) {
    Num += (Predicted[I] - MeanP) * (Measured[I] - MeanM);
    DP += (Predicted[I] - MeanP) * (Predicted[I] - MeanP);
    DM += (Measured[I] - MeanM) * (Measured[I] - MeanM);
  }
  double Correlation = Num / std::sqrt(DP * DM);
  EXPECT_GT(Correlation, 0.6);
}

TEST(LearnedRanker, RankOrdersAllCandidates) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 24);
  ASSERT_TRUE(TC.hasValue());
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  core::CogentOptions Options;
  Options.TopK = 8;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());

  LearnedRanker Ranker = LearnedRanker::fitFromSimulation(
      *TC, Device, 8, /*MaxSamples=*/20, /*MeasureExtent=*/8);
  std::vector<size_t> Order = Ranker.rank(*TC, *Result, Device, 8);
  ASSERT_EQ(Order.size(), Result->Kernels.size());
  // A permutation of the kernel indices.
  std::vector<bool> Seen(Order.size(), false);
  for (size_t I : Order) {
    ASSERT_LT(I, Seen.size());
    EXPECT_FALSE(Seen[I]);
    Seen[I] = true;
  }
}

TEST(LearnedRanker, DeterministicBySeed) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abc-acd-db", 32);
  ASSERT_TRUE(TC.hasValue());
  gpu::DeviceSpec Device = gpu::makeV100();
  LearnedRanker First = LearnedRanker::fitFromSimulation(*TC, Device, 8, 12,
                                                         8, /*Seed=*/99);
  LearnedRanker Second = LearnedRanker::fitFromSimulation(*TC, Device, 8, 12,
                                                          8, /*Seed=*/99);
  ASSERT_EQ(First.weights().size(), Second.weights().size());
  for (size_t I = 0; I < First.weights().size(); ++I)
    EXPECT_DOUBLE_EQ(First.weights()[I], Second.weights()[I]);
}

} // namespace
