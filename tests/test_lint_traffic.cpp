//===- tests/test_lint_traffic.cpp - Full-suite traffic exactness ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Coalescing pass's quantitative guarantee across the whole TCCG seed
/// suite: analysis::predictTransactions replays the *parsed source's*
/// access pattern warp by warp, gpu::simulateKernel replays the *plan's* —
/// on a clean emission the two must agree per operand, transaction for
/// transaction, at the same clamped extents the bench harness uses for its
/// traffic cross-check. 48 kernels x simulation keeps this in the slow
/// lane; tests/test_kernel_lint.cpp carries the single-entry spot check.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "core/CodeGen.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace cogent;
using ir::Contraction;
using ir::Operand;

namespace {

TEST(LintTraffic, PredictedTransactionsMatchSimulatorOnWholeSuite) {
  core::Cogent Generator(gpu::makeV100());
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    Contraction TC = Entry.contraction();
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
    ASSERT_TRUE(Result.hasValue()) << Entry.Name;

    std::vector<std::pair<char, int64_t>> Extents;
    for (char Name : TC.allIndices())
      Extents.emplace_back(Name, std::min<int64_t>(TC.extent(Name), 8));
    ErrorOr<Contraction> Small = Contraction::parse(TC.toString(), Extents);
    ASSERT_TRUE(Small.hasValue()) << Entry.Name;
    core::KernelConfig Clamped = Result->best().Config.clampedTo(*Small);
    core::KernelPlan Plan(*Small, Clamped);
    std::string Source = core::emitCuda(Plan).KernelSource;

    ErrorOr<analysis::TrafficPrediction> Predicted =
        analysis::predictTransactions(Plan, Source);
    ASSERT_TRUE(Predicted.hasValue())
        << Entry.Name << ": " << Predicted.errorMessage();

    Rng Gen(0xbe7c + static_cast<uint64_t>(Entry.Id));
    tensor::Tensor<double> A = tensor::makeOperand<double>(*Small, Operand::A);
    tensor::Tensor<double> B = tensor::makeOperand<double>(*Small, Operand::B);
    A.fillRandom(Gen);
    B.fillRandom(Gen);
    tensor::Tensor<double> C = tensor::makeOperand<double>(*Small, Operand::C);
    gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);

    EXPECT_EQ(Predicted->TransactionsA, Sim.TransactionsA) << Entry.Name;
    EXPECT_EQ(Predicted->TransactionsB, Sim.TransactionsB) << Entry.Name;
    EXPECT_EQ(Predicted->TransactionsC, Sim.TransactionsC) << Entry.Name;
  }
}

} // namespace
