//===- tests/test_name_tables.cpp - Enum name-table round-trip tests -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reporting layer serializes three closed string sets — fallback
/// levels, search statuses, roofline bound names — into metrics/trace JSON.
/// These tests pin the tables: every enumerator has a distinct, non-"?"
/// name, every name round-trips through the FromName inverse, and unknown
/// strings are rejected. Extending an enum without extending its table (or
/// the Num* constant) fails here rather than silently emitting "?".
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelRaceProver.h"
#include "core/Cogent.h"
#include "core/Enumerator.h"
#include "gpu/PerfModel.h"
#include "service/Telemetry.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

using namespace cogent;

namespace {

TEST(NameTables, FallbackLevelRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < core::NumFallbackLevels; ++I) {
    auto Level = static_cast<core::FallbackLevel>(I);
    const char *Name = core::fallbackLevelName(Level);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "?") << "level " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate fallback level name '" << Name << "'";
    auto Back = core::fallbackLevelFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Level);
  }
}

TEST(NameTables, FallbackLevelRejectsUnknownNames) {
  EXPECT_FALSE(core::fallbackLevelFromName("").has_value());
  EXPECT_FALSE(core::fallbackLevelFromName("?").has_value());
  EXPECT_FALSE(core::fallbackLevelFromName("NONE").has_value());
  EXPECT_FALSE(core::fallbackLevelFromName("minimal-tile ").has_value());
}

TEST(NameTables, SearchStatusRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < core::NumSearchStatuses; ++I) {
    auto Status = static_cast<core::SearchStatus>(I);
    const char *Name = core::searchStatusName(Status);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "?") << "status " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate search status name '" << Name << "'";
    auto Back = core::searchStatusFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Status);
  }
}

TEST(NameTables, SearchStatusRejectsUnknownNames) {
  EXPECT_FALSE(core::searchStatusFromName("").has_value());
  EXPECT_FALSE(core::searchStatusFromName("?").has_value());
  EXPECT_FALSE(core::searchStatusFromName("Complete!").has_value());
}

TEST(NameTables, ChaosSiteRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < support::NumChaosSites; ++I) {
    auto Site = static_cast<support::ChaosSite>(I);
    const char *Name = support::chaosSiteName(Site);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "?") << "site " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate chaos site name '" << Name << "'";
    auto Back = support::chaosSiteFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Site);
    // Every site's bit is inside the all-sites mask, and distinct.
    EXPECT_NE(support::AllChaosSites & support::chaosSiteBit(Site), 0u);
  }
  EXPECT_FALSE(support::chaosSiteFromName("").has_value());
  EXPECT_FALSE(support::chaosSiteFromName("?").has_value());
  EXPECT_FALSE(support::chaosSiteFromName("COST-PERTURB").has_value());
}

TEST(NameTables, ParseChaosSitesAcceptsListsRejectsUnknowns) {
  EXPECT_EQ(support::parseChaosSites("all"),
            std::optional<uint32_t>(support::AllChaosSites));
  EXPECT_EQ(support::parseChaosSites("cost-perturb"),
            std::optional<uint32_t>(
                support::chaosSiteBit(support::ChaosSite::CostPerturb)));
  EXPECT_EQ(support::parseChaosSites("cost-perturb,device-mutate"),
            std::optional<uint32_t>(
                support::chaosSiteBit(support::ChaosSite::CostPerturb) |
                support::chaosSiteBit(support::ChaosSite::DeviceMutate)));
  EXPECT_FALSE(support::parseChaosSites("no-such-site").has_value());
  EXPECT_FALSE(support::parseChaosSites("cost-perturb,bogus").has_value());
  EXPECT_FALSE(support::parseChaosSites("").has_value());
}

TEST(NameTables, UniformityRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < analysis::NumUniformityClasses; ++I) {
    auto U = static_cast<analysis::Uniformity>(I);
    const char *Name = analysis::uniformityName(U);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "?") << "class " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate uniformity name '" << Name << "'";
    auto Back = analysis::uniformityFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, U);
  }
  EXPECT_FALSE(analysis::uniformityFromName("").has_value());
  EXPECT_FALSE(analysis::uniformityFromName("?").has_value());
  EXPECT_FALSE(analysis::uniformityFromName("Uniform").has_value());
}

TEST(NameTables, RaceFindingKindRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < analysis::NumRaceFindingKinds; ++I) {
    auto Kind = static_cast<analysis::RaceFindingKind>(I);
    const char *Name = analysis::raceFindingKindName(Kind);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "?") << "kind " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate race finding kind name '" << Name << "'";
    auto Back = analysis::raceFindingKindFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Kind);
  }
  EXPECT_FALSE(analysis::raceFindingKindFromName("").has_value());
  EXPECT_FALSE(analysis::raceFindingKindFromName("?").has_value());
  EXPECT_FALSE(
      analysis::raceFindingKindFromName("write-write-race ").has_value());
}

TEST(NameTables, ErrorCodeRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < NumErrorCodes; ++I) {
    auto Code = static_cast<ErrorCode>(I);
    const char *Name = errorCodeName(Code);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "?") << "code " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate error code name '" << Name << "'";
    auto Back = errorCodeFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Code);
  }
  EXPECT_FALSE(errorCodeFromName("").has_value());
  EXPECT_FALSE(errorCodeFromName("?").has_value());
  EXPECT_FALSE(errorCodeFromName("invalidspec").has_value());
  EXPECT_FALSE(errorCodeFromName("QueueFull ").has_value());
}

TEST(NameTables, ErrorCodeTransienceIsTotalAndPinned) {
  // isTransient is the retry policy's oracle: pin the exact partition so
  // a new enumerator (or an accidental reclassification) fails here
  // rather than silently changing what the service retries.
  const std::set<ErrorCode> Transient = {
      ErrorCode::Overloaded, ErrorCode::QueueFull, ErrorCode::CorruptCache,
      ErrorCode::VerificationFailed};
  for (unsigned I = 0; I < NumErrorCodes; ++I) {
    auto Code = static_cast<ErrorCode>(I);
    EXPECT_EQ(isTransient(Code), Transient.count(Code) == 1)
        << errorCodeName(Code);
  }
  // Spot-check the load-bearing permanents: retrying these cannot help.
  EXPECT_FALSE(isTransient(ErrorCode::InvalidSpec));
  EXPECT_FALSE(isTransient(ErrorCode::DeadlineExceeded));
  EXPECT_FALSE(isTransient(ErrorCode::BudgetExceeded));
  EXPECT_FALSE(isTransient(ErrorCode::ServiceStopped));
}

TEST(NameTables, PerfBoundTableIsClosedAndDistinct) {
  const char *const *Names = gpu::perfBoundNames();
  ASSERT_NE(Names, nullptr);
  std::set<std::string> Seen;
  size_t Count = 0;
  for (const char *const *N = Names; *N; ++N, ++Count) {
    EXPECT_TRUE(Seen.insert(*N).second) << "duplicate bound name " << *N;
    EXPECT_TRUE(gpu::isPerfBoundName(*N));
  }
  // One name per roofline term: DRAM, compute, shared memory.
  EXPECT_EQ(Count, 3u);
  EXPECT_FALSE(gpu::isPerfBoundName(nullptr));
  EXPECT_FALSE(gpu::isPerfBoundName(""));
  EXPECT_FALSE(gpu::isPerfBoundName("DRAM"));
}

TEST(NameTables, EstimateKernelTimePicksBoundFromTable) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);

  // Three profiles engineered so each roofline term dominates in turn.
  gpu::KernelProfile DramHeavy;
  DramHeavy.Flops = 1e6;
  DramHeavy.DramBytes = 1e12;
  gpu::KernelProfile ComputeHeavy;
  ComputeHeavy.Flops = 1e13;
  ComputeHeavy.DramBytes = 1e3;
  gpu::KernelProfile SmemHeavy;
  SmemHeavy.Flops = 1e3;
  SmemHeavy.DramBytes = 1e3;
  SmemHeavy.SmemBytes = 1e13;

  for (const gpu::KernelProfile &Profile :
       {DramHeavy, ComputeHeavy, SmemHeavy}) {
    gpu::PerfEstimate Est = gpu::estimateKernelTime(Device, Calib, Profile);
    EXPECT_TRUE(gpu::isPerfBoundName(Est.Bound))
        << "Bound '" << Est.Bound << "' not in perfBoundNames()";
  }
  EXPECT_STREQ(gpu::estimateKernelTime(Device, Calib, DramHeavy).Bound,
               "dram");
  EXPECT_STREQ(gpu::estimateKernelTime(Device, Calib, ComputeHeavy).Bound,
               "compute");
  EXPECT_STREQ(gpu::estimateKernelTime(Device, Calib, SmemHeavy).Bound,
               "smem");
}

TEST(NameTables, MetricKindRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < support::NumMetricKinds; ++I) {
    auto Kind = static_cast<support::MetricKind>(I);
    const char *Name = support::metricKindName(Kind);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "unknown") << "kind " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate metric kind name '" << Name << "'";
    auto Back = support::metricKindFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Kind);
  }
  EXPECT_FALSE(support::metricKindFromName("").has_value());
  EXPECT_FALSE(support::metricKindFromName("Counter").has_value());
  EXPECT_FALSE(support::metricKindFromName("histogram ").has_value());
}

TEST(NameTables, RequestEventKindRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < service::NumRequestEventKinds; ++I) {
    auto Kind = static_cast<service::RequestEventKind>(I);
    const char *Name = service::requestEventKindName(Kind);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "unknown") << "kind " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate event kind name '" << Name << "'";
    auto Back = service::requestEventKindFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Kind);
  }
  EXPECT_FALSE(service::requestEventKindFromName("").has_value());
  EXPECT_FALSE(service::requestEventKindFromName("Submitted").has_value());
  EXPECT_FALSE(service::requestEventKindFromName("shed ").has_value());
}

// The timeline-completeness law leans on exactly this terminal set; a new
// terminal kind must update both isTerminalEvent and the chaos tests.
TEST(NameTables, RequestEventTerminalSetIsPinned) {
  unsigned Terminals = 0;
  for (unsigned I = 0; I < service::NumRequestEventKinds; ++I)
    Terminals +=
        service::isTerminalEvent(static_cast<service::RequestEventKind>(I))
            ? 1
            : 0;
  EXPECT_EQ(Terminals, 3u);
  EXPECT_TRUE(service::isTerminalEvent(service::RequestEventKind::Shed));
  EXPECT_TRUE(service::isTerminalEvent(service::RequestEventKind::Completed));
  EXPECT_TRUE(service::isTerminalEvent(service::RequestEventKind::Failed));
  EXPECT_FALSE(
      service::isTerminalEvent(service::RequestEventKind::Submitted));
  EXPECT_FALSE(service::isTerminalEvent(service::RequestEventKind::Backoff));
}

TEST(NameTables, BreakerStateRoundTrips) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < service::NumBreakerStates; ++I) {
    auto State = static_cast<service::BreakerState>(I);
    const char *Name = service::breakerStateName(State);
    ASSERT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "unknown") << "state " << I << " has no table entry";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate breaker state name '" << Name << "'";
    auto Back = service::breakerStateFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, State);
  }
  EXPECT_FALSE(service::breakerStateFromName("").has_value());
  EXPECT_FALSE(service::breakerStateFromName("half_open").has_value());
  EXPECT_FALSE(service::breakerStateFromName("OPEN").has_value());
}

} // namespace
