//===- tests/test_observability.cpp - Trace/counter/JSON layer tests -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the support/ observability layer and its integration with the
/// pipeline: JsonWriter emits valid RFC 8259 text, spans recorded by
/// concurrent threads nest correctly per thread id, the Chrome-trace and
/// metrics JSON artifacts validate with the library's own checker, counter
/// deltas attributed to a generate() run are deterministic and agree with
/// EnumerationStats exactly, and tracing stays fully off when not
/// requested.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "support/Counters.h"
#include "support/JsonWriter.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace cogent;
using support::CounterSnapshot;
using support::CounterValue;
using support::JsonWriter;
using support::TraceEvent;
using support::TraceSession;
using support::TraceSpan;

namespace {

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriter, EmitsValidNestedDocument) {
  JsonWriter W;
  W.beginObject();
  W.member("name", "a\"b\\c\n\t\x01");
  W.member("count", static_cast<uint64_t>(42));
  W.member("ratio", 0.25);
  W.member("flag", true);
  W.key("nothing");
  W.null();
  W.key("list");
  W.beginArray();
  W.value(1);
  W.beginObject();
  W.member("inner", -7);
  W.endObject();
  W.endArray();
  W.endObject();

  std::string Text = W.take();
  std::string Err;
  EXPECT_TRUE(support::validateJson(Text, &Err)) << Err << "\n" << Text;
  // Control characters must be escaped, never emitted raw.
  EXPECT_EQ(Text.find('\n'), std::string::npos);
  EXPECT_NE(Text.find("\\u0001"), std::string::npos);
  EXPECT_NE(Text.find("\\\"b\\\\c"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter W;
  W.beginObject();
  W.member("inf", std::numeric_limits<double>::infinity());
  W.member("nan", std::numeric_limits<double>::quiet_NaN());
  W.endObject();
  std::string Text = W.take();
  EXPECT_TRUE(support::validateJson(Text));
  EXPECT_EQ(Text, "{\"inf\":null,\"nan\":null}");
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "tru", "\"unterminated",
        "[1] trailing", "{\"a\" 1}", "01", "+1", "\"\\x\""}) {
    std::string Err;
    EXPECT_FALSE(support::validateJson(Bad, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
  for (const char *Good :
       {"null", "true", "-1.5e3", "\"\"", "[]", "{}", "  [1, 2, 3]  ",
        "{\"a\":{\"b\":[null,false]}}", "\"\\u00e9\\n\""}) {
    EXPECT_TRUE(support::validateJson(Good)) << Good;
  }
}

TEST(JsonValidate, ReportsLineAndColumnOfFirstError) {
  // json_lint's file:line:col diagnostics come straight from this helper;
  // both coordinates are 1-based and point at the offending character.
  struct Case {
    const char *Text;
    size_t Line, Column;
  };
  for (const Case &C : {
           Case{"{\"a\":}", 1, 6},          // value missing after the colon
           Case{"{\n  \"a\": 1,\n}", 3, 1}, // trailing comma before the brace
           Case{"[1,\n 2,\n tru]", 3, 5},   // bad literal on line 3
           Case{"{}x", 1, 3},               // trailing garbage
       }) {
    std::string Err;
    size_t Line = 0, Column = 0;
    EXPECT_FALSE(support::validateJsonAt(C.Text, &Err, &Line, &Column))
        << C.Text;
    EXPECT_FALSE(Err.empty()) << C.Text;
    EXPECT_EQ(Line, C.Line) << C.Text;
    EXPECT_EQ(Column, C.Column) << C.Text;
  }

  size_t Line = 7, Column = 7;
  std::string Err;
  EXPECT_TRUE(support::validateJsonAt("{\"a\":1}", &Err, &Line, &Column));
}

//===----------------------------------------------------------------------===//
// Trace sessions and spans
//===----------------------------------------------------------------------===//

/// True when [InnerStart, InnerEnd] lies within [OuterStart, OuterEnd].
bool contains(const TraceEvent &Outer, const TraceEvent &Inner) {
  return Inner.TimestampUs >= Outer.TimestampUs &&
         Inner.TimestampUs + Inner.DurationUs <=
             Outer.TimestampUs + Outer.DurationUs;
}

TEST(Trace, ConcurrentSpansNestPerThread) {
  TraceSession Session;
  support::ScopedTraceActivation Activation(&Session);

  constexpr int NumThreads = 4;
  constexpr int NumIterations = 8;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&]() {
      for (int I = 0; I < NumIterations; ++I) {
        TraceSpan Outer("test.outer");
        {
          TraceSpan Inner("test.inner");
          ASSERT_TRUE(Inner.live());
        }
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  std::vector<TraceEvent> Events = Session.events();
  EXPECT_EQ(Events.size(),
            static_cast<size_t>(NumThreads * NumIterations * 2));

  // Group by thread id: each thread must have produced its own pairs, and
  // within a thread every inner span must be contained in exactly one
  // outer span (spans on one thread are strictly nested).
  std::map<uint32_t, std::vector<TraceEvent>> ByThread;
  for (const TraceEvent &Event : Events) {
    EXPECT_EQ(Event.Phase, 'X');
    EXPECT_GE(Event.DurationUs, 0.0);
    ByThread[Event.ThreadId].push_back(Event);
  }
  EXPECT_EQ(ByThread.size(), static_cast<size_t>(NumThreads));
  for (const auto &[Tid, Thread] : ByThread) {
    std::vector<TraceEvent> Outers, Inners;
    for (const TraceEvent &Event : Thread)
      (std::string(Event.Name) == "test.outer" ? Outers : Inners)
          .push_back(Event);
    ASSERT_EQ(Outers.size(), static_cast<size_t>(NumIterations)) << Tid;
    ASSERT_EQ(Inners.size(), static_cast<size_t>(NumIterations)) << Tid;
    for (const TraceEvent &Inner : Inners) {
      int Containers = 0;
      for (const TraceEvent &Outer : Outers)
        Containers += contains(Outer, Inner);
      EXPECT_EQ(Containers, 1) << "thread " << Tid;
    }
  }
}

TEST(Trace, ChromeTraceJsonValidatesAndCoversPipelinePhases) {
  TraceSession Session;
  core::Cogent Generator(gpu::makeV100());
  core::CogentOptions Options;
  Options.Trace = &Session;
  ErrorOr<core::GenerationResult> Result =
      Generator.generate("ab-ac-cb", {{'a', 64}, {'b', 64}, {'c', 64}},
                         Options);
  ASSERT_TRUE(Result.hasValue());

  std::string Json = Session.toChromeTraceJson();
  std::string Err;
  EXPECT_TRUE(support::validateJson(Json, &Err)) << Err;
  for (const char *Span : {"cogent.parse", "cogent.generate",
                           "cogent.enumerate", "cogent.rank", "cogent.emit"})
    EXPECT_NE(Json.find(std::string("\"name\":\"") + Span + "\""),
              std::string::npos)
        << Span;

  // Phase spans must be contained in the cogent.generate span.
  std::vector<TraceEvent> Events = Session.events();
  auto Generate =
      std::find_if(Events.begin(), Events.end(), [](const TraceEvent &E) {
        return std::string(E.Name) == "cogent.generate";
      });
  ASSERT_NE(Generate, Events.end());
  for (const TraceEvent &Event : Events)
    if (Event.Phase == 'X' && Event.ThreadId == Generate->ThreadId &&
        (std::string(Event.Name) == "cogent.enumerate" ||
         std::string(Event.Name) == "cogent.rank" ||
         std::string(Event.Name) == "cogent.emit")) {
      EXPECT_TRUE(contains(*Generate, Event)) << Event.Name;
    }

  // And the recorded phase timings are populated.
  EXPECT_GT(Result->Phases.ParseMs, 0.0);
  EXPECT_GT(Result->Phases.EnumerateMs, 0.0);
  EXPECT_GT(Result->Phases.RankMs, 0.0);
  EXPECT_GT(Result->Phases.EmitMs, 0.0);
}

TEST(Trace, DisabledTracingRecordsNothing) {
  ASSERT_EQ(support::activeTraceSession(), nullptr)
      << "a previous test leaked an active session";

  {
    TraceSpan Span("test.unrecorded");
    EXPECT_FALSE(Span.live());
    Span.arg("key", "value");
    EXPECT_GE(Span.elapsedMs(), 0.0); // still usable for timings
  }
  support::traceInstant("test.unrecorded-instant");

  // A session that exists but was never activated sees nothing from a
  // full pipeline run either.
  TraceSession Bystander;
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result =
      Generator.generate("ab-ac-cb", {{'a', 32}, {'b', 32}, {'c', 32}}, {});
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Bystander.eventCount(), 0u);
  EXPECT_EQ(support::activeTraceSession(), nullptr);
}

TEST(Trace, NullActivationKeepsOuterSessionActive) {
  TraceSession Outer;
  support::ScopedTraceActivation Activate(&Outer);
  {
    support::ScopedTraceActivation Noop(nullptr);
    EXPECT_EQ(support::activeTraceSession(), &Outer);
    TraceSpan Span("test.outer-visible");
    EXPECT_TRUE(Span.live());
  }
  EXPECT_EQ(support::activeTraceSession(), &Outer);
  EXPECT_EQ(Outer.eventCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

uint64_t counterValue(const CounterSnapshot &Snapshot, const char *Name) {
  for (const CounterValue &Value : Snapshot)
    if (std::string(Value.Name) == Name)
      return Value.Value;
  ADD_FAILURE() << "counter '" << Name << "' not found";
  return 0;
}

TEST(Counters, DeltaMatchesEnumerationStatsExactly) {
  core::Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *ir::Contraction::parseUniform("abc-adc-bd", 48);
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, {});
  ASSERT_TRUE(Result.hasValue());

  const core::EnumerationStats &Stats = Result->Stats;
  const CounterSnapshot &Delta = Result->Counters;
  EXPECT_EQ(counterValue(Delta, "enumerator.raw-configs"),
            Stats.RawConfigs);
  EXPECT_EQ(counterValue(Delta, "enumerator.examined"), Stats.Examined);
  EXPECT_EQ(counterValue(Delta, "enumerator.invalid"),
            Stats.InvalidConfigs);
  EXPECT_EQ(counterValue(Delta, "enumerator.hardware-pruned"),
            Stats.HardwarePruned);
  EXPECT_EQ(counterValue(Delta, "enumerator.performance-pruned"),
            Stats.PerformancePruned);
  EXPECT_EQ(counterValue(Delta, "enumerator.survivors"), Stats.Survivors);
  EXPECT_EQ(counterValue(Delta, "cogent.generate-runs"), 1u);
  EXPECT_GE(counterValue(Delta, "costmodel.evaluations"), Stats.Survivors);
  EXPECT_GT(counterValue(Delta, "codegen.bytes-emitted"), 0u);
}

TEST(Counters, DeltaIsDeterministicAcrossIdenticalRuns) {
  core::Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *ir::Contraction::parseUniform("abcd-aebf-dfce", 24);
  ErrorOr<core::GenerationResult> First = Generator.generate(TC, {});
  ErrorOr<core::GenerationResult> Second = Generator.generate(TC, {});
  ASSERT_TRUE(First.hasValue());
  ASSERT_TRUE(Second.hasValue());

  // Same names in the same (sorted) order, same per-run deltas — the
  // process-wide totals differ, the attribution must not.
  ASSERT_EQ(First->Counters.size(), Second->Counters.size());
  for (size_t I = 0; I < First->Counters.size(); ++I) {
    EXPECT_STREQ(First->Counters[I].Name, Second->Counters[I].Name);
    EXPECT_EQ(First->Counters[I].Value, Second->Counters[I].Value)
        << First->Counters[I].Name;
  }
}

TEST(Counters, ConcurrentRunsDoNotBleedIntoEachOthersDelta) {
  // Regression: the old snapshot-diff attribution charged one run with
  // every increment any *other* thread made while it was in flight. The
  // per-thread CounterScope must give each concurrent generate() exactly
  // its own work — most crisply, exactly one generate-run each.
  constexpr int NumThreads = 4;
  std::vector<ErrorOr<core::GenerationResult>> Results;
  for (int I = 0; I < NumThreads; ++I)
    Results.push_back(Error("not run"));

  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([I, &Results] {
      core::Cogent Generator(gpu::makeV100());
      ir::Contraction TC =
          *ir::Contraction::parseUniform("abcd-aebf-dfce", 24);
      Results[I] = Generator.generate(TC, {});
    });
  for (std::thread &T : Threads)
    T.join();

  for (int I = 0; I < NumThreads; ++I) {
    ASSERT_TRUE(Results[I].hasValue()) << "thread " << I;
    EXPECT_EQ(counterValue(Results[I]->Counters, "cogent.generate-runs"), 1u)
        << "thread " << I;
    // Identical inputs on every thread: the whole attributed delta must be
    // identical too, concurrency notwithstanding.
    if (I > 0) {
      ASSERT_EQ(Results[I]->Counters.size(), Results[0]->Counters.size());
      for (size_t J = 0; J < Results[I]->Counters.size(); ++J)
        EXPECT_EQ(Results[I]->Counters[J].Value,
                  Results[0]->Counters[J].Value)
            << Results[I]->Counters[J].Name;
    }
  }
}

TEST(Counters, SnapshotIsSortedAndDescribed) {
  CounterSnapshot Snapshot = support::snapshotCounters();
  ASSERT_FALSE(Snapshot.empty());
  for (size_t I = 0; I < Snapshot.size(); ++I) {
    ASSERT_NE(Snapshot[I].Name, nullptr);
    ASSERT_NE(Snapshot[I].Description, nullptr);
    EXPECT_GT(std::string(Snapshot[I].Description).size(), 0u)
        << Snapshot[I].Name;
    if (I > 0) {
      EXPECT_LT(std::string(Snapshot[I - 1].Name),
                std::string(Snapshot[I].Name));
    }
  }
}

//===----------------------------------------------------------------------===//
// Metrics JSON
//===----------------------------------------------------------------------===//

TEST(Metrics, RenderedJsonValidatesAndEchoesStats) {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  ir::Contraction TC = *ir::Contraction::parseUniform("ab-ac-cb", 96);
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, {});
  ASSERT_TRUE(Result.hasValue());

  std::string Json = core::renderMetricsJson(TC, *Result, Device);
  std::string Err;
  EXPECT_TRUE(support::validateJson(Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"contraction\":\"ab-ac-cb\""), std::string::npos);
  EXPECT_NE(Json.find("\"device\":\"V100\""), std::string::npos);
  EXPECT_NE(Json.find("\"survivors\":" +
                      std::to_string(Result->Stats.Survivors)),
            std::string::npos);
  EXPECT_NE(Json.find("\"enumerator.examined\":" +
                      std::to_string(Result->Stats.Examined)),
            std::string::npos);
  EXPECT_NE(Json.find("\"fallback\":\"none\""), std::string::npos);
}

} // namespace
