//===- tests/test_race_prover.cpp - KernelRaceProver unit tests -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The symbolic two-thread race & barrier-divergence analyzer:
//  - uniformity (taint) classes on the corpus kernel,
//  - the full TCCG suite proves race- and divergence-clean on both devices,
//  - each race-seeding MutationKind is killed by its prover analysis and
//    every reported race carries a witness that replays,
//  - explainRaces renders the derivation, lintKernel surfaces the passes.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelDataflow.h"
#include "analysis/KernelLint.h"
#include "analysis/KernelModel.h"
#include "analysis/KernelRaceProver.h"
#include "analysis/SourceMutator.h"
#include "core/CodeGen.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "ir/Contraction.h"
#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cogent;
using analysis::MutationKind;
using analysis::RaceFinding;
using analysis::RaceFindingKind;
using analysis::RaceReport;
using analysis::Uniformity;
using ir::Contraction;

namespace {

struct Corpus {
  Contraction TC;
  core::KernelPlan Plan;
  std::string Source;
};

/// Same corpus as test_kernel_lint: the paper's Eq. 1 contraction, whose
/// winning V100 mapping exercises both register-tile dimensions.
Corpus makeCorpus() {
  Contraction TC = *Contraction::parseUniform("abcd-aebf-dfce", 24);
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  EXPECT_TRUE(Result.hasValue());
  core::KernelPlan Plan(TC, Result->best().Config);
  return Corpus{TC, Plan, core::emitCuda(Plan).KernelSource};
}

RaceReport prove(const core::KernelPlan &Plan, const std::string &Source) {
  ErrorOr<analysis::KernelModel> Model = analysis::parseKernelSource(Source);
  EXPECT_TRUE(Model.hasValue());
  ErrorOr<analysis::DataflowInfo> Flow = analysis::buildDataflow(*Model);
  EXPECT_TRUE(Flow.hasValue());
  return analysis::proveRaces(Plan, *Model, *Flow);
}

std::string renderAll(const RaceReport &R) {
  std::string Out;
  for (const RaceFinding &F : R.Findings)
    Out += F.render() + "\n";
  return Out.empty() ? "<no findings>" : Out;
}

bool hasKind(const RaceReport &R, RaceFindingKind Kind) {
  for (const RaceFinding &F : R.Findings)
    if (F.Kind == Kind)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Uniformity classes
//===----------------------------------------------------------------------===//

TEST(RaceProver, UniformityClassesOnCorpus) {
  Corpus C = makeCorpus();
  ErrorOr<analysis::KernelModel> Model =
      analysis::parseKernelSource(C.Source);
  ASSERT_TRUE(Model.hasValue());
  ErrorOr<analysis::DataflowInfo> Flow = analysis::buildDataflow(*Model);
  ASSERT_TRUE(Flow.hasValue());
  analysis::UniformityInfo U = analysis::analyzeUniformity(*Model, *Flow);

  // Thread decode chain is thread-dependent; schema-uniform roles are not.
  EXPECT_EQ(U.classOf(*Flow, "tid"), Uniformity::ThreadDependent);
  EXPECT_EQ(U.classOf(*Flow, "t_a"), Uniformity::ThreadDependent);
  EXPECT_EQ(U.classOf(*Flow, "numSteps"), Uniformity::Uniform);
  EXPECT_EQ(U.classOf(*Flow, "totalBlocks"), Uniformity::Uniform);
  EXPECT_EQ(U.classOf(*Flow, "base_a"), Uniformity::Uniform);
  EXPECT_EQ(U.classOf(*Flow, "kbase_e"), Uniformity::Uniform);
  EXPECT_EQ(U.classOf(*Flow, "strA_a"), Uniformity::Uniform);

  // The cooperative slice cursor varies by thread *and* by iteration.
  bool FoundCursor = false;
  for (size_t I = 0; I < Flow->Locations.size(); ++I)
    if (Flow->Locations[I].Name == "l") {
      FoundCursor = true;
      EXPECT_EQ(U.Classes[I], Uniformity::ThreadDependent);
      EXPECT_TRUE(U.IterationPrivate[I]);
    }
  EXPECT_TRUE(FoundCursor);
}

//===----------------------------------------------------------------------===//
// The clean-kernel guarantee
//===----------------------------------------------------------------------===//

TEST(RaceProver, CorpusKernelProvesRaceFree) {
  Corpus C = makeCorpus();
  RaceReport R = prove(C.Plan, C.Source);
  EXPECT_TRUE(R.Findings.empty()) << renderAll(R);
  EXPECT_TRUE(R.raceFree());
  EXPECT_GT(R.Intervals, 1u);
  EXPECT_GT(R.AccessesChecked, 0u);
  EXPECT_GT(R.PairsChecked, 0u);
  // The emitted layouts are proved by the analytic arguments, not by
  // falling through to bounded enumeration.
  EXPECT_EQ(R.PairsChecked, R.ProvedByInterval + R.ProvedByGcd +
                                R.ProvedByInjectivity + R.ProvedByEnumeration +
                                R.LockstepSuppressed)
      << renderAll(R);
}

TEST(RaceProver, TccgSuiteRaceAndDivergenceCleanOnBothDevices) {
  // The paper's whole benchmark suite, both devices: every top-ranked
  // emission must prove race- and divergence-free with zero findings of
  // any kind (warnings here would mean the solver lost precision on
  // layouts the emitter legitimately produces).
  for (const gpu::DeviceSpec &Device : {gpu::makeP100(), gpu::makeV100()}) {
    core::Cogent Generator(Device);
    core::CogentOptions Options;
    Options.Lint.Mode = analysis::LintMode::Off; // prove directly below
    for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
      ErrorOr<core::GenerationResult> Result =
          Generator.generate(Entry.contraction(), Options);
      ASSERT_TRUE(Result.hasValue()) << Entry.Name << " on " << Device.Name;
      core::KernelPlan Plan(Result->FallbackContraction
                                ? *Result->FallbackContraction
                                : Entry.contraction(),
                            Result->best().Config);
      RaceReport R = prove(Plan, Result->best().Source.KernelSource);
      EXPECT_TRUE(R.Findings.empty())
          << Entry.Name << " on " << Device.Name << ":\n" << renderAll(R);
    }
  }
}

//===----------------------------------------------------------------------===//
// Mutation kills: each analysis proves its seeded defect
//===----------------------------------------------------------------------===//

namespace {

const std::vector<std::pair<MutationKind, RaceFindingKind>> &raceKills() {
  static const std::vector<std::pair<MutationKind, RaceFindingKind>> Kills = {
      {MutationKind::TaintBlockBase, RaceFindingKind::NonUniformValue},
      {MutationKind::TaintStepBase, RaceFindingKind::NonUniformValue},
      {MutationKind::TaintStepCount, RaceFindingKind::NonUniformValue},
      {MutationKind::UniformizeSliceInit, RaceFindingKind::WriteWriteRace},
      {MutationKind::CollapseSmemWriteStride,
       RaceFindingKind::WriteWriteRace},
      {MutationKind::DropStoreCoordinate, RaceFindingKind::WriteWriteRace},
      {MutationKind::GuardBarrierOddTid, RaceFindingKind::DivergentBarrier},
      {MutationKind::GuardBarrierHalfTile,
       RaceFindingKind::DivergentBarrier},
      {MutationKind::DivergeStepLoop, RaceFindingKind::DivergentBarrier},
  };
  return Kills;
}

} // namespace

TEST(RaceProver, MutationCorpusKillsEveryAnalysis) {
  Corpus C = makeCorpus();
  unsigned UniformityKills = 0, RaceKills = 0, DivergenceKills = 0;
  for (const auto &[Kind, Expected] : raceKills()) {
    std::string Mutated = analysis::applyMutation(C.Source, Kind);
    ASSERT_NE(Mutated, C.Source)
        << analysis::mutationKindName(Kind)
        << ": mutation pattern absent from the corpus kernel";
    RaceReport R = prove(C.Plan, Mutated);
    EXPECT_TRUE(hasKind(R, Expected))
        << analysis::mutationKindName(Kind) << " expected a "
        << analysis::raceFindingKindName(Expected) << " finding, got:\n"
        << renderAll(R);
    if (!hasKind(R, Expected))
      continue;
    switch (Expected) {
    case RaceFindingKind::NonUniformValue:
      ++UniformityKills;
      break;
    case RaceFindingKind::WriteWriteRace:
      ++RaceKills;
      EXPECT_FALSE(R.raceFree());
      break;
    case RaceFindingKind::DivergentBarrier:
      ++DivergenceKills;
      break;
    default:
      break;
    }
    // Every reported race must carry a witness that replays to a true
    // same-address, different-thread access under the recorded forms.
    for (const RaceFinding &F : R.Findings) {
      if (F.Kind != RaceFindingKind::WriteWriteRace &&
          F.Kind != RaceFindingKind::WriteReadRace)
        continue;
      ASSERT_TRUE(F.Witness.has_value()) << F.render();
      EXPECT_TRUE(analysis::replayWitness(F)) << F.render();
      EXPECT_NE(F.Witness->Thread1, F.Witness->Thread2) << F.render();
    }
  }
  // >= 3 distinct kills per analysis, so one broken transform cannot mask
  // an analysis that stopped firing.
  EXPECT_GE(UniformityKills, 3u);
  EXPECT_GE(RaceKills, 3u);
  EXPECT_GE(DivergenceKills, 3u);
}

//===----------------------------------------------------------------------===//
// Lint surface and rendering
//===----------------------------------------------------------------------===//

TEST(RaceProver, LintSurfacesProverFindingsAsPasses11To13) {
  using analysis::LintPass;
  EXPECT_TRUE(analysis::isRacePass(LintPass::Uniformity));
  EXPECT_TRUE(analysis::isRacePass(LintPass::RaceFreedom));
  EXPECT_TRUE(analysis::isRacePass(LintPass::BarrierUniformity));
  EXPECT_FALSE(analysis::isRacePass(LintPass::BarrierPlacement));
  EXPECT_FALSE(analysis::isRacePass(LintPass::Structure));

  Corpus C = makeCorpus();
  struct Row {
    MutationKind Kind;
    LintPass Pass;
  };
  for (const Row &Row : {Row{MutationKind::TaintBlockBase,
                             LintPass::Uniformity},
                         Row{MutationKind::UniformizeSliceInit,
                             LintPass::RaceFreedom},
                         Row{MutationKind::GuardBarrierOddTid,
                             LintPass::BarrierUniformity}}) {
    std::string Mutated = analysis::applyMutation(C.Source, Row.Kind);
    analysis::LintReport Report = analysis::lintKernel(C.Plan, Mutated);
    bool Found = false;
    for (const analysis::LintFinding &F : Report.Findings)
      Found |= F.Pass == Row.Pass &&
               F.Severity == analysis::LintSeverity::Error;
    EXPECT_TRUE(Found) << analysis::mutationKindName(Row.Kind);
  }
}

TEST(RaceProver, StrictGateCountsRaceRejections) {
  // Baseline: a clean generation reports zero race findings/rejections.
  Corpus C = makeCorpus();
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(C.TC);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Result->RaceFindings, 0u);
  EXPECT_EQ(Result->RaceRejections, 0u);
  // The metrics document carries both fields for bench_compare.
  std::string Json =
      core::renderMetricsJson(C.TC, *Result, gpu::makeV100());
  EXPECT_NE(Json.find("\"race_findings\":0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"race_rejections\":0"), std::string::npos) << Json;
}

TEST(RaceProver, ExplainRacesRendersTheDerivation) {
  Corpus C = makeCorpus();
  std::string Out = analysis::explainRaces(C.Plan, C.Source);
  EXPECT_NE(Out.find("=== race prover: uniformity ==="), std::string::npos);
  EXPECT_NE(Out.find("=== race prover: solver ==="), std::string::npos);
  EXPECT_NE(Out.find("=== race prover: findings ==="), std::string::npos);
  EXPECT_NE(Out.find("none - race and divergence clean"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("tid: thread-dependent"), std::string::npos);

  // A seeded divergence renders its finding instead of the clean line.
  std::string Mutated =
      analysis::applyMutation(C.Source, MutationKind::GuardBarrierOddTid);
  std::string Bad = analysis::explainRaces(C.Plan, Mutated);
  EXPECT_NE(Bad.find("divergent-barrier"), std::string::npos) << Bad;
  EXPECT_EQ(Bad.find("none - race and divergence clean"), std::string::npos);
}

TEST(RaceProver, WitnessRenderAndFormEvalAreConsistent) {
  Corpus C = makeCorpus();
  std::string Mutated =
      analysis::applyMutation(C.Source, MutationKind::UniformizeSliceInit);
  RaceReport R = prove(C.Plan, Mutated);
  ASSERT_FALSE(R.raceFree()) << renderAll(R);
  for (const RaceFinding &F : R.Findings) {
    if (F.Kind != RaceFindingKind::WriteWriteRace &&
        F.Kind != RaceFindingKind::WriteReadRace)
      continue;
    ASSERT_TRUE(F.Witness.has_value());
    // Both columns of the witness evaluate both recorded forms to the
    // reported address.
    EXPECT_EQ(F.First.eval(F.Witness->Coords, /*Second=*/false),
              F.Witness->Address)
        << F.render();
    EXPECT_EQ(F.Second.eval(F.Witness->Coords, /*Second=*/true),
              F.Witness->Address)
        << F.render();
    // The rendering mentions the thread pair.
    EXPECT_NE(F.Witness->render().find("threads ("), std::string::npos);
  }
}
