//===- tests/test_repository.cpp - Multi-size versions + refinement --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the §IV-B multi-representative-size repository (runtime selection
/// of the closest code version) and the §VI simulation-refined top-K
/// selection.
///
//===----------------------------------------------------------------------===//

#include "core/KernelRepository.h"
#include "gpu/Autotune.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using core::KernelRepository;
using core::ShardedKernelRepository;

namespace {

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream File(Path);
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  return Buffer.str();
}

void spit(const std::string &Path, const std::string &Content) {
  std::ofstream File(Path, std::ios::trunc);
  File << Content;
}

TEST(KernelRepository, StoresOneVersionPerRepresentative) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());
  EXPECT_EQ(Repo.numVersions(), 2u);
  EXPECT_EQ(Repo.spec(), "ij-ik-kj");
}

TEST(KernelRepository, RejectsMalformedSpec) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik");
  EXPECT_FALSE(Repo.addRepresentativeUniform(64).hasValue());
}

TEST(KernelRepository, SelectsNearestRepresentative) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());

  auto uniform = [](int64_t Extent) {
    return std::vector<std::pair<char, int64_t>>{
        {'i', Extent}, {'j', Extent}, {'k', Extent}};
  };
  EXPECT_EQ(Repo.selectFor(uniform(80)).RepresentativeExtents,
            uniform(64));
  EXPECT_EQ(Repo.selectFor(uniform(1500)).RepresentativeExtents,
            uniform(2048));
  // Log-space midpoint of 64 and 2048 is ~362; below goes small.
  EXPECT_EQ(Repo.selectFor(uniform(300)).RepresentativeExtents,
            uniform(64));
  EXPECT_EQ(Repo.selectFor(uniform(420)).RepresentativeExtents,
            uniform(2048));
}

TEST(KernelRepository, VersionsDifferWhenSizesDemandIt) {
  // A tiny and a large representative should tune differently (the tiny
  // one cannot afford 16-wide tiles on an extent-8 index).
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(8).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(4096).hasValue());
  EXPECT_NE(Repo.version(0).Kernel.Config.toString(),
            Repo.version(1).Kernel.Config.toString());
}

TEST(KernelRepository, PerIndexExtentsSupported) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  std::vector<std::pair<char, int64_t>> Skewed = {
      {'i', 4096}, {'j', 16}, {'k', 256}};
  ASSERT_TRUE(Repo.addRepresentative(Skewed).hasValue());
  EXPECT_EQ(Repo.selectFor(Skewed).RepresentativeExtents, Skewed);
}

TEST(RepositoryCache, SaveLoadRoundTrips) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_roundtrip.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  KernelRepository Loaded(Generator, "ij-ik-kj");
  std::vector<Error> Warnings;
  ErrorOr<size_t> Count = Loaded.loadFromFile(Path, &Warnings);
  ASSERT_TRUE(Count.hasValue()) << Count.errorMessage();
  EXPECT_EQ(*Count, 2u);
  EXPECT_EQ(Loaded.numVersions(), 2u);
  EXPECT_TRUE(Warnings.empty());
  // Loaded versions are re-generated, so they match a fresh repository
  // exactly (kernels are never deserialized from disk).
  KernelRepository Fresh(Generator, "ij-ik-kj");
  ASSERT_TRUE(Fresh.addRepresentativeUniform(64).hasValue());
  EXPECT_EQ(Loaded.version(0).Kernel.Config.toString(),
            Fresh.version(0).Kernel.Config.toString());
}

TEST(RepositoryCache, VersionMismatchIsTypedFullMiss) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_version.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  // An older (or newer) format version must never be best-effort parsed.
  std::string Content = slurp(Path);
  ASSERT_NE(Content.find("COGENTREPO v2"), std::string::npos);
  Content.replace(Content.find("v2"), 2, "v1");
  spit(Path, Content);

  KernelRepository Repo(Generator, "ij-ik-kj");
  ErrorOr<size_t> Count = Repo.loadFromFile(Path);
  ASSERT_FALSE(Count.hasValue());
  EXPECT_EQ(Count.errorCode(), ErrorCode::CorruptCache);
  EXPECT_EQ(Repo.numVersions(), 0u);
}

TEST(RepositoryCache, CorruptEntryWarnsAndSkips) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_corrupt.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.addRepresentativeUniform(512).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  // Flip one digit of the first entry's extents: its checksum no longer
  // matches, so it must be warned about and skipped — never silently
  // reused — while the intact entry still loads.
  std::string Content = slurp(Path);
  size_t At = Content.find("i=64");
  ASSERT_NE(At, std::string::npos);
  Content.replace(At, 4, "i=65");
  spit(Path, Content);

  KernelRepository Repo(Generator, "ij-ik-kj");
  std::vector<Error> Warnings;
  ErrorOr<size_t> Count = Repo.loadFromFile(Path, &Warnings);
  ASSERT_TRUE(Count.hasValue());
  EXPECT_EQ(*Count, 1u);
  EXPECT_EQ(Repo.numVersions(), 1u);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_EQ(Warnings[0].code(), ErrorCode::CorruptCache);
  EXPECT_NE(Warnings[0].render().find("checksum"), std::string::npos)
      << Warnings[0].render();
}

TEST(RepositoryCache, TruncatedEntriesWarnNeverCrash) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_truncated.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  std::string Content = slurp(Path);

  // Truncate at every prefix length: each must come back as a typed error
  // (header gone) or a load with warnings — never a crash, never a bogus
  // version.
  for (size_t Keep = 0; Keep < Content.size(); Keep += 7) {
    spit(Path, Content.substr(0, Keep));
    KernelRepository Repo(Generator, "ij-ik-kj");
    std::vector<Error> Warnings;
    ErrorOr<size_t> Count = Repo.loadFromFile(Path, &Warnings);
    if (!Count) {
      EXPECT_EQ(Count.errorCode(), ErrorCode::CorruptCache);
    } else {
      EXPECT_EQ(Repo.numVersions(), *Count);
      for (const Error &W : Warnings)
        EXPECT_EQ(W.code(), ErrorCode::CorruptCache);
    }
  }
}

TEST(RepositoryCache, WrongSpecAndMissingFileRejected) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_spec.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  // A cache written for a different contraction is a warned full miss.
  KernelRepository Other(Generator, "ab-ac-cb");
  std::vector<Error> Warnings;
  ErrorOr<size_t> Count = Other.loadFromFile(Path, &Warnings);
  ASSERT_TRUE(Count.hasValue());
  EXPECT_EQ(*Count, 0u);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_EQ(Warnings[0].code(), ErrorCode::CorruptCache);

  // A missing file is a typed error, not a crash.
  KernelRepository Fresh(Generator, "ij-ik-kj");
  ErrorOr<size_t> Missing =
      Fresh.loadFromFile(tempPath("no_such_cogent_cache.cache"));
  ASSERT_FALSE(Missing.hasValue());
  EXPECT_EQ(Missing.errorCode(), ErrorCode::CorruptCache);
}

TEST(ShardedRepository, MissThenHitReturnsIdenticalPlan) {
  Cogent Generator(gpu::makeV100());
  ShardedKernelRepository Repo(Generator, 8);
  std::vector<std::pair<char, int64_t>> Extents = {
      {'a', 64}, {'b', 64}, {'c', 64}};

  ErrorOr<ShardedKernelRepository::Lookup> Miss =
      Repo.lookupOrGenerate("ab-ac-cb", Extents);
  ASSERT_TRUE(Miss.hasValue()) << Miss.errorMessage();
  EXPECT_FALSE(Miss->CacheHit);
  ErrorOr<ShardedKernelRepository::Lookup> Hit =
      Repo.lookupOrGenerate("ab-ac-cb", Extents);
  ASSERT_TRUE(Hit.hasValue());
  EXPECT_TRUE(Hit->CacheHit);
  EXPECT_EQ(Miss->Kernel.Config.toString(), Hit->Kernel.Config.toString());
  EXPECT_EQ(Repo.hits(), 1u);
  EXPECT_EQ(Repo.misses(), 1u);
  EXPECT_EQ(Repo.size(), 1u);
}

TEST(ShardedRepository, SignatureExcludesPerRunKnobs) {
  // A degraded / chaos-armed request must land on the same cache entry as
  // the plain one: the signature keys on contraction + extents + element
  // size only.
  Cogent Generator(gpu::makeV100());
  ShardedKernelRepository Repo(Generator, 8);
  std::vector<std::pair<char, int64_t>> Extents = {
      {'a', 64}, {'b', 64}, {'c', 64}};
  ASSERT_TRUE(Repo.lookupOrGenerate("ab-ac-cb", Extents).hasValue());

  CogentOptions Degraded;
  Degraded.StartRung = core::FallbackLevel::TtgtBaseline;
  Degraded.Budget.DeadlineMs = 0.001;
  ErrorOr<ShardedKernelRepository::Lookup> Hit =
      Repo.lookupOrGenerate("ab-ac-cb", Extents, &Degraded);
  ASSERT_TRUE(Hit.hasValue());
  EXPECT_TRUE(Hit->CacheHit) << "per-run options must not change the key";
  // Element size IS part of the key.
  CogentOptions Fp32;
  Fp32.ElementSize = 4;
  ErrorOr<ShardedKernelRepository::Lookup> Other =
      Repo.lookupOrGenerate("ab-ac-cb", Extents, &Fp32);
  ASSERT_TRUE(Other.hasValue());
  EXPECT_FALSE(Other->CacheHit);
  EXPECT_EQ(Repo.size(), 2u);
}

TEST(ShardedRepository, GenerateFreshRefreshesWithoutLookup) {
  Cogent Generator(gpu::makeV100());
  ShardedKernelRepository Repo(Generator, 4);
  std::vector<std::pair<char, int64_t>> Extents = {
      {'i', 48}, {'j', 48}, {'k', 48}};
  ASSERT_TRUE(Repo.lookupOrGenerate("ij-ik-kj", Extents).hasValue());
  ErrorOr<ShardedKernelRepository::Lookup> Fresh =
      Repo.generateFresh("ij-ik-kj", Extents);
  ASSERT_TRUE(Fresh.hasValue());
  EXPECT_FALSE(Fresh->CacheHit);
  EXPECT_EQ(Repo.size(), 1u);
  EXPECT_EQ(Repo.hits(), 0u);
  EXPECT_EQ(Repo.misses(), 2u);
}

#ifdef COGENT_CHAOS_ENABLED
TEST(ShardedRepository, ConcurrentChaosStressNoCrossShardPoisoning) {
  // The satellite stress contract: many threads hammering a sharded cache
  // whose hit path is being actively corrupted by the repository-corrupt
  // chaos site. Every lookup must return a valid plan (corruption is a
  // quarantined miss, never served data), the books must balance, and
  // corruption in one shard must never evict entries from another.
  Cogent Generator(gpu::makeV100());
  ShardedKernelRepository Repo(Generator, 8);

  const std::vector<std::pair<std::string,
                              std::vector<std::pair<char, int64_t>>>>
      Workload = {
          {"ab-ac-cb", {{'a', 48}, {'b', 48}, {'c', 48}}},
          {"abc-abd-dc", {{'a', 16}, {'b', 16}, {'c', 16}, {'d', 16}}},
          {"ij-ik-kj", {{'i', 64}, {'j', 32}, {'k', 32}}},
          {"ab-ac-cb", {{'a', 96}, {'b', 24}, {'c', 24}}},
      };

  // Reference plans, generated without chaos.
  std::vector<std::string> Reference;
  for (const auto &[Spec, Extents] : Workload) {
    ErrorOr<ShardedKernelRepository::Lookup> Plan =
        Repo.lookupOrGenerate(Spec, Extents);
    ASSERT_TRUE(Plan.hasValue()) << Plan.errorMessage();
    Reference.push_back(Plan->Kernel.Config.toString());
  }

  constexpr unsigned NumThreads = 8;
  constexpr unsigned LookupsPerThread = 40;
  std::atomic<uint64_t> Bad{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      // Each thread arms its own injector: activation is thread-local, so
      // the fault streams are independent and race-free by construction.
      support::ChaosOptions Chaos;
      Chaos.Seed = 1000 + T;
      Chaos.Sites =
          support::chaosSiteBit(support::ChaosSite::RepositoryCorrupt);
      Chaos.FireProbability = 0.5;
      support::FaultInjector Injector(Chaos);
      support::ScopedChaosActivation Activation(&Injector);
      for (unsigned I = 0; I < LookupsPerThread; ++I) {
        const auto &[Spec, Extents] = Workload[(T + I) % Workload.size()];
        ErrorOr<ShardedKernelRepository::Lookup> Plan =
            Repo.lookupOrGenerate(Spec, Extents);
        if (!Plan ||
            Plan->Kernel.Config.toString() !=
                Reference[(T + I) % Workload.size()])
          Bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Thread : Threads)
    Thread.join();

  EXPECT_EQ(Bad.load(), 0u)
      << "a lookup returned an error or a non-reference plan under chaos";
  // Books balance: every lookup was a hit or a miss, and every quarantine
  // produced a regenerated entry rather than a loss.
  EXPECT_EQ(Repo.hits() + Repo.misses(),
            uint64_t(NumThreads) * LookupsPerThread + Workload.size());
  EXPECT_GT(Repo.quarantined(), 0u)
      << "the corrupt site never fired; the stress proved nothing";
  EXPECT_EQ(Repo.size(), Workload.size());

  // Cross-shard isolation: the corrupt site only ever touched entries on
  // their own shard, so after a repair pass nothing is suspect and all
  // entries verify.
  Repo.rebuildQuarantined();
  EXPECT_EQ(Repo.suspectShards(), 0u);
  size_t Spread = 0;
  for (size_t I = 0; I < Repo.numShards(); ++I)
    Spread += Repo.shardSize(I) > 0 ? 1 : 0;
  EXPECT_GE(Spread, 2u) << "workload unexpectedly hashed to one shard";
}

TEST(ShardedRepository, RebuildQuarantinedRepairsSuspectShards) {
  Cogent Generator(gpu::makeV100());
  ShardedKernelRepository Repo(Generator, 4);
  std::vector<std::pair<char, int64_t>> Extents = {
      {'a', 48}, {'b', 48}, {'c', 48}};
  ASSERT_TRUE(Repo.lookupOrGenerate("ab-ac-cb", Extents).hasValue());

  // Force a quarantine: with the corrupt site firing at p=1 the next hit
  // must detect the mismatch, evict, and regenerate.
  support::ChaosOptions Chaos;
  Chaos.Sites =
      support::chaosSiteBit(support::ChaosSite::RepositoryCorrupt);
  Chaos.FireProbability = 1.0;
  Chaos.Seed = 3;
  {
    support::FaultInjector Injector(Chaos);
    support::ScopedChaosActivation Activation(&Injector);
    ErrorOr<ShardedKernelRepository::Lookup> Plan =
        Repo.lookupOrGenerate("ab-ac-cb", Extents);
    ASSERT_TRUE(Plan.hasValue());
    EXPECT_TRUE(Plan->Quarantined);
    EXPECT_FALSE(Plan->CacheHit);
  }
  EXPECT_EQ(Repo.quarantined(), 1u);
  EXPECT_EQ(Repo.suspectShards(), 1u);

  // The quarantining lookup already regenerated its own entry; the repair
  // pass rescans the suspect shard, finds it intact, and clears the mark.
  Repo.rebuildQuarantined();
  EXPECT_EQ(Repo.suspectShards(), 0u);
  ErrorOr<ShardedKernelRepository::Lookup> After =
      Repo.lookupOrGenerate("ab-ac-cb", Extents);
  ASSERT_TRUE(After.hasValue());
  EXPECT_TRUE(After->CacheHit);
}
#endif // COGENT_CHAOS_ENABLED

TEST(RefineTopK, MeasuresEveryCandidate) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<ir::Contraction> TC =
      ir::Contraction::parseUniform("abcd-aebf-dfce", 24);
  ASSERT_TRUE(TC.hasValue());
  CogentOptions Options;
  Options.TopK = 6;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());

  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, gpu::makeV100(), 8, /*MeasureExtent=*/8);
  ASSERT_EQ(Refined.Candidates.size(), Result->Kernels.size());
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates) {
    EXPECT_GT(Candidate.MeasuredGflops, 0.0);
    EXPECT_GT(Candidate.ExactTransactions, 0u);
  }
  EXPECT_LT(Refined.WinnerIndex, Result->Kernels.size());
  // The winner really is the measured argmax.
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates)
    EXPECT_LE(Candidate.MeasuredGflops,
              Refined.Candidates[Refined.WinnerIndex].MeasuredGflops);
}

TEST(RefineTopK, ConfirmedFlagMatchesWinner) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<ir::Contraction> TC =
      ir::Contraction::parseUniform("abcdef-gdab-efgc", 16);
  ASSERT_TRUE(TC.hasValue());
  CogentOptions Options;
  Options.TopK = 4;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());
  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, gpu::makeV100(), 8, /*MeasureExtent=*/6);
  EXPECT_EQ(Refined.ModelPickConfirmed, Refined.WinnerIndex == 0);
}

} // namespace
