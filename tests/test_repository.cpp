//===- tests/test_repository.cpp - Multi-size versions + refinement --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the §IV-B multi-representative-size repository (runtime selection
/// of the closest code version) and the §VI simulation-refined top-K
/// selection.
///
//===----------------------------------------------------------------------===//

#include "core/KernelRepository.h"
#include "gpu/Autotune.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using core::KernelRepository;

namespace {

TEST(KernelRepository, StoresOneVersionPerRepresentative) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());
  EXPECT_EQ(Repo.numVersions(), 2u);
  EXPECT_EQ(Repo.spec(), "ij-ik-kj");
}

TEST(KernelRepository, RejectsMalformedSpec) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik");
  EXPECT_FALSE(Repo.addRepresentativeUniform(64).hasValue());
}

TEST(KernelRepository, SelectsNearestRepresentative) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());

  auto uniform = [](int64_t Extent) {
    return std::vector<std::pair<char, int64_t>>{
        {'i', Extent}, {'j', Extent}, {'k', Extent}};
  };
  EXPECT_EQ(Repo.selectFor(uniform(80)).RepresentativeExtents,
            uniform(64));
  EXPECT_EQ(Repo.selectFor(uniform(1500)).RepresentativeExtents,
            uniform(2048));
  // Log-space midpoint of 64 and 2048 is ~362; below goes small.
  EXPECT_EQ(Repo.selectFor(uniform(300)).RepresentativeExtents,
            uniform(64));
  EXPECT_EQ(Repo.selectFor(uniform(420)).RepresentativeExtents,
            uniform(2048));
}

TEST(KernelRepository, VersionsDifferWhenSizesDemandIt) {
  // A tiny and a large representative should tune differently (the tiny
  // one cannot afford 16-wide tiles on an extent-8 index).
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(8).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(4096).hasValue());
  EXPECT_NE(Repo.version(0).Kernel.Config.toString(),
            Repo.version(1).Kernel.Config.toString());
}

TEST(KernelRepository, PerIndexExtentsSupported) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  std::vector<std::pair<char, int64_t>> Skewed = {
      {'i', 4096}, {'j', 16}, {'k', 256}};
  ASSERT_TRUE(Repo.addRepresentative(Skewed).hasValue());
  EXPECT_EQ(Repo.selectFor(Skewed).RepresentativeExtents, Skewed);
}

TEST(RefineTopK, MeasuresEveryCandidate) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<ir::Contraction> TC =
      ir::Contraction::parseUniform("abcd-aebf-dfce", 24);
  ASSERT_TRUE(TC.hasValue());
  CogentOptions Options;
  Options.TopK = 6;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());

  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, gpu::makeV100(), 8, /*MeasureExtent=*/8);
  ASSERT_EQ(Refined.Candidates.size(), Result->Kernels.size());
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates) {
    EXPECT_GT(Candidate.MeasuredGflops, 0.0);
    EXPECT_GT(Candidate.ExactTransactions, 0u);
  }
  EXPECT_LT(Refined.WinnerIndex, Result->Kernels.size());
  // The winner really is the measured argmax.
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates)
    EXPECT_LE(Candidate.MeasuredGflops,
              Refined.Candidates[Refined.WinnerIndex].MeasuredGflops);
}

TEST(RefineTopK, ConfirmedFlagMatchesWinner) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<ir::Contraction> TC =
      ir::Contraction::parseUniform("abcdef-gdab-efgc", 16);
  ASSERT_TRUE(TC.hasValue());
  CogentOptions Options;
  Options.TopK = 4;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());
  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, gpu::makeV100(), 8, /*MeasureExtent=*/6);
  EXPECT_EQ(Refined.ModelPickConfirmed, Refined.WinnerIndex == 0);
}

} // namespace
