//===- tests/test_repository.cpp - Multi-size versions + refinement --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the §IV-B multi-representative-size repository (runtime selection
/// of the closest code version) and the §VI simulation-refined top-K
/// selection.
///
//===----------------------------------------------------------------------===//

#include "core/KernelRepository.h"
#include "gpu/Autotune.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using core::KernelRepository;

namespace {

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream File(Path);
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  return Buffer.str();
}

void spit(const std::string &Path, const std::string &Content) {
  std::ofstream File(Path, std::ios::trunc);
  File << Content;
}

TEST(KernelRepository, StoresOneVersionPerRepresentative) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());
  EXPECT_EQ(Repo.numVersions(), 2u);
  EXPECT_EQ(Repo.spec(), "ij-ik-kj");
}

TEST(KernelRepository, RejectsMalformedSpec) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik");
  EXPECT_FALSE(Repo.addRepresentativeUniform(64).hasValue());
}

TEST(KernelRepository, SelectsNearestRepresentative) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());

  auto uniform = [](int64_t Extent) {
    return std::vector<std::pair<char, int64_t>>{
        {'i', Extent}, {'j', Extent}, {'k', Extent}};
  };
  EXPECT_EQ(Repo.selectFor(uniform(80)).RepresentativeExtents,
            uniform(64));
  EXPECT_EQ(Repo.selectFor(uniform(1500)).RepresentativeExtents,
            uniform(2048));
  // Log-space midpoint of 64 and 2048 is ~362; below goes small.
  EXPECT_EQ(Repo.selectFor(uniform(300)).RepresentativeExtents,
            uniform(64));
  EXPECT_EQ(Repo.selectFor(uniform(420)).RepresentativeExtents,
            uniform(2048));
}

TEST(KernelRepository, VersionsDifferWhenSizesDemandIt) {
  // A tiny and a large representative should tune differently (the tiny
  // one cannot afford 16-wide tiles on an extent-8 index).
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  ASSERT_TRUE(Repo.addRepresentativeUniform(8).hasValue());
  ASSERT_TRUE(Repo.addRepresentativeUniform(4096).hasValue());
  EXPECT_NE(Repo.version(0).Kernel.Config.toString(),
            Repo.version(1).Kernel.Config.toString());
}

TEST(KernelRepository, PerIndexExtentsSupported) {
  Cogent Generator(gpu::makeV100());
  KernelRepository Repo(Generator, "ij-ik-kj");
  std::vector<std::pair<char, int64_t>> Skewed = {
      {'i', 4096}, {'j', 16}, {'k', 256}};
  ASSERT_TRUE(Repo.addRepresentative(Skewed).hasValue());
  EXPECT_EQ(Repo.selectFor(Skewed).RepresentativeExtents, Skewed);
}

TEST(RepositoryCache, SaveLoadRoundTrips) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_roundtrip.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.addRepresentativeUniform(2048).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  KernelRepository Loaded(Generator, "ij-ik-kj");
  std::vector<Error> Warnings;
  ErrorOr<size_t> Count = Loaded.loadFromFile(Path, &Warnings);
  ASSERT_TRUE(Count.hasValue()) << Count.errorMessage();
  EXPECT_EQ(*Count, 2u);
  EXPECT_EQ(Loaded.numVersions(), 2u);
  EXPECT_TRUE(Warnings.empty());
  // Loaded versions are re-generated, so they match a fresh repository
  // exactly (kernels are never deserialized from disk).
  KernelRepository Fresh(Generator, "ij-ik-kj");
  ASSERT_TRUE(Fresh.addRepresentativeUniform(64).hasValue());
  EXPECT_EQ(Loaded.version(0).Kernel.Config.toString(),
            Fresh.version(0).Kernel.Config.toString());
}

TEST(RepositoryCache, VersionMismatchIsTypedFullMiss) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_version.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  // An older (or newer) format version must never be best-effort parsed.
  std::string Content = slurp(Path);
  ASSERT_NE(Content.find("COGENTREPO v2"), std::string::npos);
  Content.replace(Content.find("v2"), 2, "v1");
  spit(Path, Content);

  KernelRepository Repo(Generator, "ij-ik-kj");
  ErrorOr<size_t> Count = Repo.loadFromFile(Path);
  ASSERT_FALSE(Count.hasValue());
  EXPECT_EQ(Count.errorCode(), ErrorCode::CorruptCache);
  EXPECT_EQ(Repo.numVersions(), 0u);
}

TEST(RepositoryCache, CorruptEntryWarnsAndSkips) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_corrupt.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.addRepresentativeUniform(512).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  // Flip one digit of the first entry's extents: its checksum no longer
  // matches, so it must be warned about and skipped — never silently
  // reused — while the intact entry still loads.
  std::string Content = slurp(Path);
  size_t At = Content.find("i=64");
  ASSERT_NE(At, std::string::npos);
  Content.replace(At, 4, "i=65");
  spit(Path, Content);

  KernelRepository Repo(Generator, "ij-ik-kj");
  std::vector<Error> Warnings;
  ErrorOr<size_t> Count = Repo.loadFromFile(Path, &Warnings);
  ASSERT_TRUE(Count.hasValue());
  EXPECT_EQ(*Count, 1u);
  EXPECT_EQ(Repo.numVersions(), 1u);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_EQ(Warnings[0].code(), ErrorCode::CorruptCache);
  EXPECT_NE(Warnings[0].render().find("checksum"), std::string::npos)
      << Warnings[0].render();
}

TEST(RepositoryCache, TruncatedEntriesWarnNeverCrash) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_truncated.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  std::string Content = slurp(Path);

  // Truncate at every prefix length: each must come back as a typed error
  // (header gone) or a load with warnings — never a crash, never a bogus
  // version.
  for (size_t Keep = 0; Keep < Content.size(); Keep += 7) {
    spit(Path, Content.substr(0, Keep));
    KernelRepository Repo(Generator, "ij-ik-kj");
    std::vector<Error> Warnings;
    ErrorOr<size_t> Count = Repo.loadFromFile(Path, &Warnings);
    if (!Count) {
      EXPECT_EQ(Count.errorCode(), ErrorCode::CorruptCache);
    } else {
      EXPECT_EQ(Repo.numVersions(), *Count);
      for (const Error &W : Warnings)
        EXPECT_EQ(W.code(), ErrorCode::CorruptCache);
    }
  }
}

TEST(RepositoryCache, WrongSpecAndMissingFileRejected) {
  Cogent Generator(gpu::makeV100());
  std::string Path = tempPath("cogent_repo_spec.cache");
  {
    KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(64).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }
  // A cache written for a different contraction is a warned full miss.
  KernelRepository Other(Generator, "ab-ac-cb");
  std::vector<Error> Warnings;
  ErrorOr<size_t> Count = Other.loadFromFile(Path, &Warnings);
  ASSERT_TRUE(Count.hasValue());
  EXPECT_EQ(*Count, 0u);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_EQ(Warnings[0].code(), ErrorCode::CorruptCache);

  // A missing file is a typed error, not a crash.
  KernelRepository Fresh(Generator, "ij-ik-kj");
  ErrorOr<size_t> Missing =
      Fresh.loadFromFile(tempPath("no_such_cogent_cache.cache"));
  ASSERT_FALSE(Missing.hasValue());
  EXPECT_EQ(Missing.errorCode(), ErrorCode::CorruptCache);
}

TEST(RefineTopK, MeasuresEveryCandidate) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<ir::Contraction> TC =
      ir::Contraction::parseUniform("abcd-aebf-dfce", 24);
  ASSERT_TRUE(TC.hasValue());
  CogentOptions Options;
  Options.TopK = 6;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());

  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, gpu::makeV100(), 8, /*MeasureExtent=*/8);
  ASSERT_EQ(Refined.Candidates.size(), Result->Kernels.size());
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates) {
    EXPECT_GT(Candidate.MeasuredGflops, 0.0);
    EXPECT_GT(Candidate.ExactTransactions, 0u);
  }
  EXPECT_LT(Refined.WinnerIndex, Result->Kernels.size());
  // The winner really is the measured argmax.
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates)
    EXPECT_LE(Candidate.MeasuredGflops,
              Refined.Candidates[Refined.WinnerIndex].MeasuredGflops);
}

TEST(RefineTopK, ConfirmedFlagMatchesWinner) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<ir::Contraction> TC =
      ir::Contraction::parseUniform("abcdef-gdab-efgc", 16);
  ASSERT_TRUE(TC.hasValue());
  CogentOptions Options;
  Options.TopK = 4;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());
  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, gpu::makeV100(), 8, /*MeasureExtent=*/6);
  EXPECT_EQ(Refined.ModelPickConfirmed, Refined.WinnerIndex == 0);
}

} // namespace
