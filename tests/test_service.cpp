//===- tests/test_service.cpp - GenerationService behavior ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the resilient generation service (docs/ARCHITECTURE.md §15):
/// admission control and typed load shedding, deadline-driven graceful
/// degradation to cheaper fallback rungs, singleflight coalescing of
/// duplicate in-flight signatures, stop semantics, and the
/// submitted == completed + failed + shed conservation law.
///
/// Timing-sensitive behaviors are pinned with determinism devices rather
/// than sleeps where possible: StartPaused fills the queue without racing
/// the workers, and the degradation thresholds are set so any finite
/// deadline lands in the intended band.
///
//===----------------------------------------------------------------------===//

#include "service/GenerationService.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

using namespace cogent;
using core::FallbackLevel;
using service::GenerationService;
using service::PendingRequest;
using service::ServiceOptions;
using service::ServiceRequest;
using service::ServiceResult;
using service::ServiceStats;

namespace {

ServiceRequest gemmRequest(int64_t Extent = 64) {
  ServiceRequest Request;
  Request.Spec = "ab-ac-cb";
  Request.Extents = {{'a', Extent}, {'b', Extent}, {'c', Extent}};
  return Request;
}

ServiceRequest ccsdRequest() {
  ServiceRequest Request;
  Request.Spec = "abc-abd-dc";
  Request.Extents = {{'a', 24}, {'b', 24}, {'c', 24}, {'d', 24}};
  return Request;
}

TEST(Service, ColdMissThenWarmHitSamePlan) {
  GenerationService Service(gpu::makeV100());
  ErrorOr<ServiceResult> Cold = Service.process(gemmRequest());
  ASSERT_TRUE(Cold.hasValue()) << Cold.errorMessage();
  EXPECT_FALSE(Cold->CacheHit);
  ErrorOr<ServiceResult> Warm = Service.process(gemmRequest());
  ASSERT_TRUE(Warm.hasValue()) << Warm.errorMessage();
  EXPECT_TRUE(Warm->CacheHit);
  EXPECT_EQ(Cold->Kernel.Config.toString(), Warm->Kernel.Config.toString());
  EXPECT_EQ(Service.repository().size(), 1u);
}

TEST(Service, InvalidSpecIsTypedPermanentError) {
  GenerationService Service(gpu::makeV100());
  ServiceRequest Bad;
  Bad.Spec = "not-a-contraction-at@all-x";
  Bad.Extents = {{'a', 8}};
  ErrorOr<ServiceResult> Result = Service.process(Bad);
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorCode(), ErrorCode::InvalidSpec);
  // Permanent errors must not burn retries.
  EXPECT_EQ(Service.stats().Retries, 0u);
}

TEST(Service, QueueFullShedsTyped) {
  ServiceOptions Options;
  Options.StartPaused = true;
  Options.NumWorkers = 2;
  Options.QueueCapacity = 2;
  GenerationService Service(gpu::makeV100(), Options);

  // Paused workers never drain, so the queue fills deterministically.
  ErrorOr<std::shared_ptr<PendingRequest>> A = Service.submit(gemmRequest());
  ErrorOr<std::shared_ptr<PendingRequest>> B = Service.submit(ccsdRequest());
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  ErrorOr<std::shared_ptr<PendingRequest>> C = Service.submit(gemmRequest());
  ASSERT_FALSE(C.hasValue());
  EXPECT_EQ(C.errorCode(), ErrorCode::QueueFull);

  // The shed caller lost nothing but time: resuming completes the admitted
  // requests normally.
  Service.resume();
  EXPECT_TRUE(Service.wait(*A).hasValue());
  EXPECT_TRUE(Service.wait(*B).hasValue());
  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.ShedQueueFull, 1u);
  EXPECT_EQ(Stats.Submitted, 3u);
  EXPECT_EQ(Stats.Completed, 2u);
}

TEST(Service, OverloadedShedsTyped) {
  ServiceOptions Options;
  Options.StartPaused = true;
  Options.QueueCapacity = 64;
  Options.MaxOutstanding = 2;
  GenerationService Service(gpu::makeV100(), Options);

  ErrorOr<std::shared_ptr<PendingRequest>> A = Service.submit(gemmRequest());
  ErrorOr<std::shared_ptr<PendingRequest>> B = Service.submit(ccsdRequest());
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  ErrorOr<std::shared_ptr<PendingRequest>> C = Service.submit(gemmRequest());
  ASSERT_FALSE(C.hasValue());
  EXPECT_EQ(C.errorCode(), ErrorCode::Overloaded);
  EXPECT_EQ(Service.stats().ShedOverloaded, 1u);

  Service.resume();
  EXPECT_TRUE(Service.wait(*A).hasValue());
  EXPECT_TRUE(Service.wait(*B).hasValue());
}

TEST(Service, NegativeDeadlineShedsAtSubmit) {
  GenerationService Service(gpu::makeV100());
  ServiceRequest Request = gemmRequest();
  Request.DeadlineMs = -1.0;
  ErrorOr<ServiceResult> Result = Service.process(Request);
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorCode(), ErrorCode::DeadlineExceeded);
  EXPECT_EQ(Service.stats().ShedExpired, 1u);
}

TEST(Service, TightDeadlineDegradesToMinimalTile) {
  // Any finite deadline lands below this threshold, so the band choice is
  // deterministic, not a race against the clock.
  ServiceOptions Options;
  Options.DegradeMinimalTileMs = 1e9;
  Options.DegradeTtgtMs = 0.0;
  GenerationService Service(gpu::makeV100(), Options);

  ServiceRequest Request = gemmRequest();
  Request.DeadlineMs = 10000.0;
  ErrorOr<ServiceResult> Result = Service.process(Request);
  ASSERT_TRUE(Result.hasValue()) << Result.errorMessage();
  EXPECT_TRUE(Result->DeadlineDegraded);
  EXPECT_FALSE(Result->DeadlineExpired);
  EXPECT_EQ(Result->Kernel.Config.toString().empty(), false);
  EXPECT_EQ(Result->Fallback, FallbackLevel::MinimalTile);
  EXPECT_EQ(Service.stats().DeadlineDegraded, 1u);
}

TEST(Service, ExpiredDeadlineStillProducesTtgtPlan) {
  // The deadline expires while the request sits in the paused queue; a
  // worker picking it up afterwards must degrade to the TTGT rung and
  // answer — never hang, never return an unexplained error.
  ServiceOptions Options;
  Options.StartPaused = true;
  GenerationService Service(gpu::makeV100(), Options);

  ServiceRequest Request = ccsdRequest();
  Request.DeadlineMs = 20.0;
  ErrorOr<std::shared_ptr<PendingRequest>> Handle =
      Service.submit(Request);
  ASSERT_TRUE(Handle.hasValue());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  Service.resume();
  ErrorOr<ServiceResult> Result = Service.wait(*Handle);
  ASSERT_TRUE(Result.hasValue()) << Result.errorMessage();
  EXPECT_TRUE(Result->DeadlineExpired);
  EXPECT_TRUE(Result->DeadlineDegraded);
  EXPECT_EQ(Result->Fallback, FallbackLevel::TtgtBaseline);
  EXPECT_EQ(Service.stats().DeadlineExpired, 1u);
}

TEST(Service, DuplicateSignaturesGenerateOnce) {
  // Six identical cold requests released at once: exactly one generation
  // happens; everyone else coalesces onto the leader's flight or (if the
  // leader already finished) hits the fresh cache entry. Either way the
  // plans are identical.
  ServiceOptions Options;
  Options.StartPaused = true;
  Options.NumWorkers = 4;
  GenerationService Service(gpu::makeV100(), Options);

  std::vector<std::shared_ptr<PendingRequest>> Handles;
  for (int I = 0; I < 6; ++I) {
    ErrorOr<std::shared_ptr<PendingRequest>> Handle =
        Service.submit(gemmRequest());
    ASSERT_TRUE(Handle.hasValue());
    Handles.push_back(*Handle);
  }
  Service.resume();

  std::set<std::string> Configs;
  for (const std::shared_ptr<PendingRequest> &Handle : Handles) {
    ErrorOr<ServiceResult> Result = Service.wait(Handle);
    ASSERT_TRUE(Result.hasValue()) << Result.errorMessage();
    Configs.insert(Result->Kernel.Config.toString());
  }
  EXPECT_EQ(Configs.size(), 1u);
  EXPECT_EQ(Service.repository().misses(), 1u);
  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Coalesced + Stats.CacheHits, 5u);
  EXPECT_EQ(Stats.Completed, 6u);
}

TEST(Service, StopFailsQueuedRequestsTyped) {
  ServiceOptions Options;
  Options.StartPaused = true;
  GenerationService Service(gpu::makeV100(), Options);

  ErrorOr<std::shared_ptr<PendingRequest>> A = Service.submit(gemmRequest());
  ErrorOr<std::shared_ptr<PendingRequest>> B = Service.submit(ccsdRequest());
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  Service.stop();

  ErrorOr<ServiceResult> ResultA = Service.wait(*A);
  ErrorOr<ServiceResult> ResultB = Service.wait(*B);
  ASSERT_FALSE(ResultA.hasValue());
  ASSERT_FALSE(ResultB.hasValue());
  EXPECT_EQ(ResultA.errorCode(), ErrorCode::ServiceStopped);
  EXPECT_EQ(ResultB.errorCode(), ErrorCode::ServiceStopped);

  // Post-stop submissions are rejected at the door, and stop() again is a
  // no-op.
  ErrorOr<ServiceResult> Late = Service.process(gemmRequest());
  ASSERT_FALSE(Late.hasValue());
  EXPECT_EQ(Late.errorCode(), ErrorCode::ServiceStopped);
  Service.stop();

  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Failed, 2u);
  EXPECT_EQ(Stats.Submitted, 3u);
}

TEST(Service, BatchMixesSuccessAndTypedFailurePerIndex) {
  GenerationService Service(gpu::makeV100());
  std::vector<ServiceRequest> Batch;
  Batch.push_back(gemmRequest());
  ServiceRequest Bad;
  Bad.Spec = "oops";
  Bad.Extents = {{'o', 8}, {'p', 8}, {'s', 8}};
  Batch.push_back(Bad);
  Batch.push_back(ccsdRequest());

  std::vector<ErrorOr<ServiceResult>> Results = Service.processBatch(Batch);
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_TRUE(Results[0].hasValue());
  ASSERT_FALSE(Results[1].hasValue());
  EXPECT_EQ(Results[1].errorCode(), ErrorCode::InvalidSpec);
  EXPECT_TRUE(Results[2].hasValue());
}

TEST(Service, StatsConservationUnderMixedTraffic) {
  // submitted == completed + failed + shed, with nothing silently dropped:
  // the conservation law every other robustness claim leans on.
  ServiceOptions Options;
  Options.StartPaused = true;
  Options.QueueCapacity = 4;
  GenerationService Service(gpu::makeV100(), Options);

  std::vector<std::shared_ptr<PendingRequest>> Handles;
  size_t SubmitErrors = 0;
  for (int I = 0; I < 8; ++I) {
    ServiceRequest Request = I % 2 ? gemmRequest() : ccsdRequest();
    if (I == 5)
      Request.DeadlineMs = -1.0; // expired at submit
    if (I == 6)
      Request.Spec = "zz"; // typed generation failure
    ErrorOr<std::shared_ptr<PendingRequest>> Handle =
        Service.submit(Request);
    if (Handle)
      Handles.push_back(*Handle);
    else
      ++SubmitErrors;
  }
  Service.resume();
  for (const std::shared_ptr<PendingRequest> &Handle : Handles)
    (void)Service.wait(Handle);

  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Submitted, 8u);
  EXPECT_EQ(Stats.Submitted,
            Stats.Completed + Stats.Failed + Stats.ShedQueueFull +
                Stats.ShedOverloaded + Stats.ShedExpired);
  EXPECT_EQ(SubmitErrors,
            Stats.ShedQueueFull + Stats.ShedOverloaded + Stats.ShedExpired);
}

TEST(Service, PercentileMsInterpolates) {
  std::vector<double> Samples = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs(Samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs(Samples, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs(Samples, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs({}, 99.0), 0.0);
}

TEST(Service, DestructorStopsCleanlyWithQueuedWork) {
  // Destroying a paused service with queued work must not hang or crash;
  // the queued requests fail typed (observable through handles that
  // outlive the service only via wait-before-destruction, so here we just
  // prove clean teardown).
  ServiceOptions Options;
  Options.StartPaused = true;
  auto Service = std::make_unique<GenerationService>(gpu::makeV100(),
                                                     Options);
  ASSERT_TRUE(Service->submit(gemmRequest()).hasValue());
  ASSERT_TRUE(Service->submit(ccsdRequest()).hasValue());
  Service.reset();
}

} // namespace
