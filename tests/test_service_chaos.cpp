//===- tests/test_service_chaos.cpp - Service under fault injection --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service-layer chaos lane: drives GenerationService with every fault
/// injection site armed, across many seeds and from many client threads,
/// and asserts the robustness contract — every request completes with a
/// verified plan or a typed, retry-classified error; nothing hangs,
/// nothing crashes, nothing is silently dropped (the stats conservation
/// law holds under fire). Also pins the deterministic retry-exhaustion
/// path and the circuit breaker's trip/recover state machine.
///
//===----------------------------------------------------------------------===//

#include "service/GenerationService.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace cogent;
using core::FallbackLevel;
using service::GenerationService;
using service::ServiceOptions;
using service::ServiceRequest;
using service::ServiceResult;
using service::ServiceStats;

namespace {

std::vector<ServiceRequest> requestPool() {
  std::vector<ServiceRequest> Pool;
  auto add = [&](const char *Spec, std::vector<std::pair<char, int64_t>> E) {
    ServiceRequest Request;
    Request.Spec = Spec;
    Request.Extents = std::move(E);
    Pool.push_back(std::move(Request));
  };
  add("ab-ac-cb", {{'a', 48}, {'b', 48}, {'c', 48}});
  add("abc-abd-dc", {{'a', 16}, {'b', 16}, {'c', 16}, {'d', 16}});
  add("ij-ik-kj", {{'i', 96}, {'j', 24}, {'k', 64}});
  add("abcd-aebf-dfce",
      {{'a', 8}, {'b', 8}, {'c', 8}, {'d', 8}, {'e', 8}, {'f', 8}});
  return Pool;
}

/// The contract every chaos request is held to: a plan with non-empty
/// source, or an error whose code is typed (never Unknown) — and therefore
/// classifiable by the retry policy.
void checkOutcome(const ErrorOr<ServiceResult> &Result) {
  if (Result) {
    EXPECT_FALSE(Result->Kernel.Source.KernelSource.empty());
    EXPECT_FALSE(Result->Kernel.Config.toString().empty());
  } else {
    EXPECT_NE(Result.errorCode(), ErrorCode::Unknown)
        << Result.errorMessage();
    (void)isTransient(Result.errorCode()); // total over every code
  }
}

TEST(ServiceChaos, AllSitesManySeedsManyClientsNoSilentDrops) {
  const std::vector<ServiceRequest> Pool = requestPool();
  uint64_t TotalCompleted = 0, TotalFailed = 0, TotalQuarantined = 0;

  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    ServiceOptions Options;
    Options.NumWorkers = 8;
    Options.MaxRetries = 2;
    Options.RetryBackoffBaseMs = 0.05;
    Options.RetryBackoffMaxMs = 0.5;
    Options.Generation.Chaos.Seed = Seed;
    Options.Generation.Chaos.Sites = support::AllChaosSites;
    Options.Generation.Chaos.FireProbability = 0.25;
    GenerationService Service(gpu::makeV100(), Options);

    std::atomic<uint64_t> ClientErrors{0};
    std::vector<std::thread> Clients;
    for (unsigned C = 0; C < 4; ++C) {
      Clients.emplace_back([&, C] {
        for (unsigned R = 0; R < 10; ++R) {
          ServiceRequest Request = Pool[(C + R) % Pool.size()];
          // Mixed deadline pressure: unbounded, generous, and tight
          // enough to force degraded rungs mid-sweep.
          if (R % 3 == 1)
            Request.DeadlineMs = 500.0;
          else if (R % 3 == 2)
            Request.DeadlineMs = 4.0;
          ErrorOr<ServiceResult> Result = Service.process(Request);
          checkOutcome(Result);
          if (!Result)
            ClientErrors.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread &Client : Clients)
      Client.join();

    // Background repair: after the sweep no shard stays suspect.
    Service.repairCache();
    EXPECT_EQ(Service.repository().suspectShards(), 0u);

    ServiceStats Stats = Service.stats();
    EXPECT_EQ(Stats.Submitted, 40u) << "seed " << Seed;
    EXPECT_EQ(Stats.Submitted,
              Stats.Completed + Stats.Failed + Stats.ShedQueueFull +
                  Stats.ShedOverloaded + Stats.ShedExpired)
        << "seed " << Seed << ": requests were silently dropped";
    EXPECT_EQ(Stats.Failed, ClientErrors.load()) << "seed " << Seed;
    TotalCompleted += Stats.Completed;
    TotalFailed += Stats.Failed;
    TotalQuarantined += Stats.Quarantined;
  }

  // Across the sweep the service must actually absorb load, not fail it
  // all: the overwhelming majority of chaos-stressed requests complete.
  EXPECT_GT(TotalCompleted, TotalFailed * 10);
  // And with the repository-corrupt site armed at p=0.25 over hundreds of
  // warm hits, quarantines must actually have happened — otherwise this
  // test is not exercising the integrity path at all.
  EXPECT_GT(TotalQuarantined, 0u);
}

TEST(ServiceChaos, RetryExhaustionIsTypedAndCountsAttempts) {
  // Truncate every emission: generation fails VerificationFailed at every
  // rung, every attempt. The service must retry exactly MaxRetries times
  // (the code is transient), then surface the typed error.
  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.MaxRetries = 2;
  Options.RetryBackoffBaseMs = 0.05;
  Options.RetryBackoffMaxMs = 0.2;
  Options.Generation.Chaos.Seed = 7;
  Options.Generation.Chaos.Sites =
      support::chaosSiteBit(support::ChaosSite::CodegenTruncate);
  Options.Generation.Chaos.FireProbability = 1.0;
  GenerationService Service(gpu::makeV100(), Options);

  ServiceRequest Request;
  Request.Spec = "ab-ac-cb";
  Request.Extents = {{'a', 32}, {'b', 32}, {'c', 32}};
  ErrorOr<ServiceResult> Result = Service.process(Request);
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorCode(), ErrorCode::VerificationFailed);
  EXPECT_TRUE(isTransient(Result.errorCode()));
  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Retries, 2u);
  EXPECT_EQ(Stats.Failed, 1u);
}

TEST(ServiceChaos, BreakerTripsToTtgtAndRecovers) {
  // Runs that absorb codegen mutations carry lint/verifier rejections
  // even when the re-emit/fallback machinery rescues them; enough of
  // those in a row must trip the signature's breaker to the TTGT rung,
  // and a dirty half-open probe must re-open it.
  //
  // With BypassCache and MaxRetries=0 every process() of the same
  // signature derives the identical per-attempt chaos seed, so one
  // service's runs are deterministic replicas of each other. Scan base
  // seeds for one whose replica outcome is "succeeds, carrying
  // rejections": three such runs trip the breaker (observable as
  // BreakerTrips==1 with all runs succeeding), and the breaker-degraded
  // TTGT run must survive the same storm.
  ServiceRequest Request;
  Request.Spec = "abc-abd-dc";
  Request.Extents = {{'a', 16}, {'b', 16}, {'c', 16}, {'d', 16}};
  Request.BypassCache = true;

  auto makeService = [](uint64_t Seed) {
    ServiceOptions Options;
    Options.NumWorkers = 1;
    Options.MaxRetries = 0;
    Options.BreakerThreshold = 3;
    Options.BreakerCooldownRequests = 2;
    Options.Generation.Chaos.Seed = Seed;
    Options.Generation.Chaos.Sites =
        support::chaosSiteBit(support::ChaosSite::CodegenMutate);
    Options.Generation.Chaos.FireProbability = 0.6;
    return std::make_unique<GenerationService>(gpu::makeV100(), Options);
  };

  std::unique_ptr<GenerationService> Service;
  uint64_t FoundSeed = 0;
  for (uint64_t Seed = 1; Seed <= 64 && !Service; ++Seed) {
    auto Candidate = makeService(Seed);
    // Trip phase: BreakerThreshold identical full-pipeline runs.
    bool AllSucceeded = true;
    for (unsigned I = 0; I < 3 && AllSucceeded; ++I) {
      ErrorOr<ServiceResult> Result = Candidate->process(Request);
      checkOutcome(Result);
      AllSucceeded = Result.hasValue() && !Result->BreakerDegraded;
    }
    if (!AllSucceeded || Candidate->stats().BreakerTrips != 1)
      continue; // clean runs (no rejections) or outright failures
    // Open phase: the degraded TTGT run must also survive this seed.
    ErrorOr<ServiceResult> Degraded = Candidate->process(Request);
    checkOutcome(Degraded);
    if (!Degraded.hasValue() || !Degraded->BreakerDegraded)
      continue;
    EXPECT_EQ(Degraded->Fallback, FallbackLevel::TtgtBaseline);
    Service = std::move(Candidate);
    FoundSeed = Seed;
  }
  ASSERT_NE(Service, nullptr)
      << "no seed in 1..64 produced rejection-carrying successful runs";

  // Half-open probe: the cooldown (2 requests: the degraded one above
  // plus this admission) lets the next request run the full pipeline.
  // Its chaos replica is identical to the tripping runs — still dirty —
  // so the probe re-opens the breaker and counts another trip.
  ErrorOr<ServiceResult> Probe = Service->process(Request);
  ASSERT_TRUE(Probe.hasValue())
      << "seed " << FoundSeed << ": " << Probe.errorMessage();
  EXPECT_FALSE(Probe->BreakerDegraded); // the probe itself runs full
  EXPECT_EQ(Service->stats().BreakerTrips, 2u) << "seed " << FoundSeed;
  ErrorOr<ServiceResult> DegradedAgain = Service->process(Request);
  ASSERT_TRUE(DegradedAgain.hasValue());
  EXPECT_TRUE(DegradedAgain->BreakerDegraded);
  EXPECT_EQ(Service->stats().BreakerResets, 0u);
}

TEST(ServiceChaos, DeterministicSeedsReproduceStats) {
  // Two single-threaded runs with the same seed must produce identical
  // resilience tallies — the whole point of deterministic chaos.
  auto run = [](uint64_t Seed) {
    ServiceOptions Options;
    Options.NumWorkers = 1;
    Options.MaxRetries = 2;
    Options.RetryBackoffBaseMs = 0.01;
    Options.Generation.Chaos.Seed = Seed;
    Options.Generation.Chaos.Sites = support::AllChaosSites;
    Options.Generation.Chaos.FireProbability = 0.3;
    GenerationService Service(gpu::makeV100(), Options);
    for (const ServiceRequest &Request : requestPool())
      for (int Round = 0; Round < 3; ++Round)
        (void)Service.process(Request);
    ServiceStats Stats = Service.stats();
    return std::vector<uint64_t>{Stats.Completed, Stats.Failed,
                                 Stats.Retries, Stats.CacheHits,
                                 Stats.Quarantined, Stats.BreakerTrips};
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6)); // and the seed actually matters
}

} // namespace
