//===- tests/test_simulator.cpp - Kernel simulator vs reference -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the whole system: every kernel
/// configuration the enumerator produces, when executed by the functional
/// simulator (which interprets exactly the schedule the CUDA emitter
/// encodes), must reproduce the reference contraction. Sweeps hand-picked
/// configs, enumerated configs, and randomized contractions.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::IndexTile;
using core::KernelConfig;
using core::KernelPlan;
using ir::Contraction;
using ir::Operand;
using tensor::Tensor;

namespace {

Contraction parse(const std::string &Spec, int64_t Extent) {
  ErrorOr<Contraction> TC = Contraction::parseUniform(Spec, Extent);
  EXPECT_TRUE(TC.hasValue()) << Spec;
  return *TC;
}

/// Runs one config through the simulator and checks against the oracle.
void expectSimMatchesReference(const Contraction &TC,
                               const KernelConfig &Config) {
  ASSERT_EQ(Config.validate(TC), "") << Config.toString();
  KernelPlan Plan(TC, Config);

  Rng Generator(42);
  Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);

  Tensor<double> Expected = tensor::makeOperand<double>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);

  Tensor<double> Actual = tensor::makeOperand<double>(TC, Operand::C);
  gpu::SimResult Sim = gpu::simulateKernel(Plan, Actual, A, B);

  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-10)
      << TC.toString() << " with " << Config.toString();
  EXPECT_GT(Sim.totalTransactions(), 0u);
}

TEST(Simulator, Eq1HandPickedConfig) {
  // The paper's running example with the Fig. 2-style mapping.
  Contraction TC = parse("abcd-aebf-dfce", 8);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 8}};
  Config.TBy = {{'c', 8}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 4}};
  Config.TBk = {{'e', 4}};
  expectSimMatchesReference(TC, Config);
}

TEST(Simulator, Eq1PartialTiles) {
  // Extents that do not divide the tiles exercise every guard.
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 7}, {'b', 5}, {'c', 9}, {'d', 3}, {'e', 6}, {'f', 2}});
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 4}, {'f', 2}};
  expectSimMatchesReference(*TC, Config);
}

TEST(Simulator, MatrixMultiply) {
  // Plain GEMM as a contraction: C[i,j] = A[i,k] * B[k,j].
  Contraction TC = parse("ij-ik-kj", 16);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'i', 8}};
  Config.TBy = {{'j', 8}};
  Config.TBk = {{'k', 8}};
  expectSimMatchesReference(TC, Config);
}

TEST(Simulator, OuterProductNoInternals) {
  // No contraction indices at all: C[i,j] = A[i] * B[j].
  Contraction TC = parse("ij-i-j", 12);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'i', 4}};
  Config.TBy = {{'j', 4}};
  expectSimMatchesReference(TC, Config);
}

TEST(Simulator, OutputFviInB) {
  // The output's FVI lives in B, so the X side is B.
  Contraction TC = parse("abcd-ebcd-ea", 6);
  KernelConfig Config;
  Config.XInput = Operand::B;
  Config.TBx = {{'a', 6}};
  Config.TBy = {{'b', 6}};
  Config.RegY = {{'c', 3}};
  Config.TBk = {{'e', 6}};
  expectSimMatchesReference(TC, Config);
}

TEST(Simulator, UnmappedExternalsIterateOnGrid) {
  Contraction TC = parse("abc-acd-db", 6);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 3}};
  Config.TBy = {{'b', 2}};
  Config.TBk = {{'d', 3}};
  // 'c' stays unmapped: one grid tile per value.
  expectSimMatchesReference(TC, Config);
}

/// Every enumerated configuration for a handful of structurally different
/// contractions must execute correctly.
class EnumeratedConfigs : public ::testing::TestWithParam<const char *> {};

TEST_P(EnumeratedConfigs, AllMatchReference) {
  Contraction TC = parse(GetParam(), 6);
  gpu::DeviceSpec Device = gpu::makeV100();
  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  core::Enumerator Enum(TC, Device, Options);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  // Cap the sweep to keep runtime sane; configs are deterministic.
  size_t Stride = std::max<size_t>(1, Configs.size() / 40);
  for (size_t I = 0; I < Configs.size(); I += Stride)
    expectSimMatchesReference(TC, Configs[I]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnumeratedConfigs,
                         ::testing::Values("abcd-aebf-dfce", // Eq. 1
                                           "ij-ik-kj",       // GEMM
                                           "abc-bda-dc",     // ML
                                           "abcd-ebcd-ea",   // FVI in B
                                           "abcdef-gdab-efgc", // SD2_1
                                           "ab-acd-dbc"));

/// Randomized contraction structures: random index distribution between
/// the tensors, random extents, first enumerated config.
TEST(Simulator, RandomizedContractions) {
  Rng Generator(7);
  gpu::DeviceSpec Device = gpu::makeV100();
  for (int Trial = 0; Trial < 25; ++Trial) {
    // Build a random valid contraction: 2-4 externals, 1-2 internals.
    int NumExt = static_cast<int>(Generator.uniformInt(2, 4));
    int NumInt = static_cast<int>(Generator.uniformInt(1, 2));
    std::string CStr, AStr, BStr;
    std::vector<std::pair<char, int64_t>> Extents;
    char Next = 'a';
    for (int I = 0; I < NumExt; ++I) {
      char Name = Next++;
      CStr += Name;
      (Generator.flip() ? AStr : BStr) += Name;
      Extents.emplace_back(Name, Generator.uniformInt(2, 7));
    }
    for (int I = 0; I < NumInt; ++I) {
      char Name = Next++;
      AStr += Name;
      BStr += Name;
      Extents.emplace_back(Name, Generator.uniformInt(2, 7));
    }
    if (AStr.empty() || BStr.empty())
      continue; // all externals fell on one side and C FVI needs an owner
    // Shuffle orders so FVIs vary.
    std::shuffle(AStr.begin(), AStr.end(), Generator.engine());
    std::shuffle(BStr.begin(), BStr.end(), Generator.engine());
    std::string Spec = CStr + "-" + AStr + "-" + BStr;
    ErrorOr<Contraction> TC = Contraction::parse(Spec, Extents);
    ASSERT_TRUE(TC.hasValue()) << Spec;

    core::EnumerationOptions Options;
    Options.MinThreadBlocks = 1;
    Options.MinOccupancy = 0.0;
    core::Enumerator Enum(*TC, Device, Options);
    std::vector<KernelConfig> Configs = Enum.enumerate();
    ASSERT_FALSE(Configs.empty()) << Spec;
    expectSimMatchesReference(*TC, Configs.front());
    expectSimMatchesReference(*TC, Configs.back());
  }
}

/// Float path.
TEST(Simulator, SinglePrecision) {
  Contraction TC = parse("abcd-aebf-dfce", 6);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 3}};
  KernelPlan Plan(TC, Config);

  Rng Generator(11);
  Tensor<float> A = tensor::makeOperand<float>(TC, Operand::A);
  Tensor<float> B = tensor::makeOperand<float>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  Tensor<float> Expected = tensor::makeOperand<float>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);
  Tensor<float> Actual = tensor::makeOperand<float>(TC, Operand::C);
  gpu::simulateKernel(Plan, Actual, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-3);
}

} // namespace
