//===- tests/test_suite.cpp - TCCG suite structure tests -------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

#include <set>

using namespace cogent;
using namespace cogent::suite;
using ir::Operand;

namespace {

TEST(TccgSuite, FortyEightEntriesWithSequentialIds) {
  const std::vector<SuiteEntry> &Suite = tccgSuite();
  ASSERT_EQ(Suite.size(), 48u);
  for (size_t I = 0; I < Suite.size(); ++I)
    EXPECT_EQ(Suite[I].Id, static_cast<int>(I) + 1);
}

TEST(TccgSuite, FamilySizesMatchThePaper) {
  // 8 ML, 3 AO-MO, 19 CCSD, 18 CCSD(T) (paper §V).
  EXPECT_EQ(suiteByCategory(Category::MachineLearning).size(), 8u);
  EXPECT_EQ(suiteByCategory(Category::AoMoTransform).size(), 3u);
  EXPECT_EQ(suiteByCategory(Category::Ccsd).size(), 19u);
  EXPECT_EQ(suiteByCategory(Category::CcsdT).size(), 18u);
}

TEST(TccgSuite, FamiliesOccupyThePaperRanges) {
  // 1-8 ML, 9-11 AO-MO, 12-30 CCSD, 31-48 CCSD(T), as in Figs. 4/5.
  for (int Id = 1; Id <= 8; ++Id)
    EXPECT_EQ(suiteEntry(Id).Cat, Category::MachineLearning);
  for (int Id = 9; Id <= 11; ++Id)
    EXPECT_EQ(suiteEntry(Id).Cat, Category::AoMoTransform);
  for (int Id = 12; Id <= 30; ++Id)
    EXPECT_EQ(suiteEntry(Id).Cat, Category::Ccsd);
  for (int Id = 31; Id <= 48; ++Id)
    EXPECT_EQ(suiteEntry(Id).Cat, Category::CcsdT);
}

TEST(TccgSuite, PaperQuotedSpecsVerbatim) {
  // Eq. 1 is the 12th benchmark; SD2_1 (Fig. 8) is abcdef-gdab-efgc.
  EXPECT_EQ(suiteEntry(12).Spec, "abcd-aebf-dfce");
  EXPECT_EQ(suiteEntry(31).Spec, "abcdef-gdab-efgc");
  EXPECT_EQ(suiteEntry(31).Name, "sd2_1");
}

TEST(TccgSuite, NoDuplicateSpecs) {
  std::set<std::string> Seen;
  for (const SuiteEntry &Entry : tccgSuite())
    EXPECT_TRUE(Seen.insert(Entry.Spec).second)
        << "duplicate spec " << Entry.Spec;
}

TEST(TccgSuite, EveryEntryParses) {
  for (const SuiteEntry &Entry : tccgSuite()) {
    ir::Contraction TC = Entry.contraction();
    EXPECT_EQ(TC.toString(), Entry.Spec);
    EXPECT_GT(TC.flopCount(), 0.0);
  }
}

TEST(TccgSuite, CcsdTStructure) {
  // Every CCSD(T) entry is a 6D = 4D * 4D contraction with exactly one
  // contraction index, the NWChem triples shape.
  for (const SuiteEntry &Entry : suiteByCategory(Category::CcsdT)) {
    ir::Contraction TC = Entry.contraction();
    EXPECT_EQ(TC.rank(Operand::C), 6u) << Entry.Spec;
    EXPECT_EQ(TC.rank(Operand::A), 4u) << Entry.Spec;
    EXPECT_EQ(TC.rank(Operand::B), 4u) << Entry.Spec;
    EXPECT_EQ(TC.internalIndices().size(), 1u) << Entry.Spec;
  }
}

TEST(TccgSuite, FourDEqualsFourDTimesFourDEntries) {
  // The paper singles out the 12th and 20th-30th entries as 4D = 4D * 4D.
  const int FourDIds[] = {12, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30};
  for (int Id : FourDIds) {
    ir::Contraction TC = suiteEntry(Id).contraction();
    EXPECT_EQ(TC.rank(Operand::C), 4u) << Id;
    EXPECT_EQ(TC.rank(Operand::A), 4u) << Id;
    EXPECT_EQ(TC.rank(Operand::B), 4u) << Id;
    EXPECT_EQ(TC.internalIndices().size(), 2u) << Id;
  }
}

TEST(TccgSuite, Sd2SetHasNineEntries) {
  std::vector<SuiteEntry> Sd2 = sd2Set();
  ASSERT_EQ(Sd2.size(), 9u);
  for (const SuiteEntry &Entry : Sd2) {
    EXPECT_EQ(Entry.Cat, Category::CcsdT);
    EXPECT_EQ(Entry.Name.rfind("sd2_", 0), 0u);
  }
}

TEST(TccgSuite, ScalingClampsExtents) {
  const SuiteEntry &Entry = suiteEntry(12); // extents 72
  ir::Contraction Scaled = Entry.contractionScaled(6);
  for (char Name : Scaled.allIndices())
    EXPECT_LE(Scaled.extent(Name), 6);
  ir::Contraction Unscaled = Entry.contractionScaled(1000);
  EXPECT_EQ(Unscaled.extent('a'), 72);
}

TEST(TccgSuite, CategoryNames) {
  EXPECT_STREQ(categoryName(Category::MachineLearning), "ML");
  EXPECT_STREQ(categoryName(Category::AoMoTransform), "AO-MO");
  EXPECT_STREQ(categoryName(Category::Ccsd), "CCSD");
  EXPECT_STREQ(categoryName(Category::CcsdT), "CCSD(T)");
}

} // namespace
