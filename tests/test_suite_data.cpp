//===- tests/test_suite_data.cpp - Suite <-> data-file consistency ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keeps data/tccg_suite.txt (the artifact-style human-readable listing of
/// the benchmark inputs) in lockstep with the built-in suite. If either
/// side changes without the other, this fails.
///
//===----------------------------------------------------------------------===//

#include "suite/TccgSuite.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace cogent;

namespace {

std::string findDataFile() {
  // ctest runs from build/tests; direct runs may start elsewhere.
  for (const char *Candidate :
       {"../../data/tccg_suite.txt", "data/tccg_suite.txt",
        "../data/tccg_suite.txt"}) {
    std::ifstream Probe(Candidate);
    if (Probe.good())
      return Candidate;
  }
  return std::string();
}

TEST(SuiteData, FileMatchesBuiltInSuite) {
  std::string Path = findDataFile();
  if (Path.empty())
    GTEST_SKIP() << "data/tccg_suite.txt not found from the test directory";

  std::ifstream In(Path);
  std::vector<std::vector<std::string>> Lines;
  std::string Line;
  while (std::getline(In, Line)) {
    Line = trim(Line);
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    std::vector<std::string> Tokens;
    std::string Token;
    while (Fields >> Token)
      Tokens.push_back(Token);
    Lines.push_back(std::move(Tokens));
  }

  const std::vector<suite::SuiteEntry> &Suite = suite::tccgSuite();
  ASSERT_EQ(Lines.size(), Suite.size());
  for (size_t I = 0; I < Suite.size(); ++I) {
    const std::vector<std::string> &Tokens = Lines[I];
    ASSERT_GE(Tokens.size(), 4u);
    EXPECT_EQ(std::stoi(Tokens[0]), Suite[I].Id);
    EXPECT_EQ(Tokens[1], Suite[I].Name);
    EXPECT_EQ(Tokens[2], suite::categoryName(Suite[I].Cat));
    EXPECT_EQ(Tokens[3], Suite[I].Spec);
    // Per-index extents.
    ASSERT_EQ(Tokens.size(), 4u + Suite[I].Extents.size());
    for (size_t J = 0; J < Suite[I].Extents.size(); ++J) {
      std::string Expected =
          std::string(1, Suite[I].Extents[J].first) + "=" +
          std::to_string(Suite[I].Extents[J].second);
      EXPECT_EQ(Tokens[4 + J], Expected) << Suite[I].Name;
    }
  }
}

TEST(SuiteData, LoaderRoundTripsTheDataFile) {
  std::string Path = findDataFile();
  if (Path.empty())
    GTEST_SKIP() << "data/tccg_suite.txt not found from the test directory";

  ErrorOr<std::vector<suite::SuiteEntry>> Loaded = suite::loadSuiteFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.errorMessage();

  const std::vector<suite::SuiteEntry> &Suite = suite::tccgSuite();
  ASSERT_EQ(Loaded->size(), Suite.size());
  for (size_t I = 0; I < Suite.size(); ++I) {
    const suite::SuiteEntry &L = (*Loaded)[I];
    EXPECT_EQ(L.Id, Suite[I].Id);
    EXPECT_EQ(L.Name, Suite[I].Name);
    EXPECT_EQ(L.Cat, Suite[I].Cat);
    EXPECT_EQ(L.Spec, Suite[I].Spec);
    EXPECT_EQ(L.Extents, Suite[I].Extents) << Suite[I].Name;
    EXPECT_TRUE(L.tryContraction().hasValue()) << Suite[I].Name;
  }
}

TEST(SuiteData, MissingFileIsATypedError) {
  ErrorOr<std::vector<suite::SuiteEntry>> Missing =
      suite::loadSuiteFile("no/such/suite_listing.txt");
  ASSERT_FALSE(Missing.hasValue());
  EXPECT_EQ(Missing.errorCode(), ErrorCode::InvalidSpec);
  EXPECT_NE(Missing.errorMessage().find("no/such/suite_listing.txt"),
            std::string::npos)
      << Missing.errorMessage();
}

} // namespace
