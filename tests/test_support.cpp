//===- tests/test_support.cpp - Support-library unit tests ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorOr.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace cogent;

namespace {

TEST(StringUtils, SplitBasic) {
  std::vector<std::string> Pieces = split("abcd-aebf-dfce", '-');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "abcd");
  EXPECT_EQ(Pieces[1], "aebf");
  EXPECT_EQ(Pieces[2], "dfce");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  std::vector<std::string> Pieces = split("a--b", '-');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(StringUtils, SplitNoSeparator) {
  std::vector<std::string> Pieces = split("abc", '-');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "abc");
}

TEST(StringUtils, SplitEmptyString) {
  std::vector<std::string> Pieces = split("", '-');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "");
}

TEST(StringUtils, JoinRoundTrip) {
  std::vector<std::string> Pieces = {"abcd", "aebf", "dfce"};
  EXPECT_EQ(join(Pieces, "-"), "abcd-aebf-dfce");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"x"}, "-"), "x");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtils, Indent) {
  EXPECT_EQ(indent(0), "");
  EXPECT_EQ(indent(2), "    ");
}

TEST(ErrorOr, HoldsValue) {
  ErrorOr<int> Result(42);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(*Result, 42);
  EXPECT_TRUE(static_cast<bool>(Result));
}

TEST(ErrorOr, HoldsError) {
  ErrorOr<int> Result = Error("something broke");
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorMessage(), "something broke");
}

TEST(ErrorOr, MoveOnlyFriendly) {
  ErrorOr<std::unique_ptr<int>> Result(std::make_unique<int>(7));
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(**Result, 7);
}

TEST(Rng, DeterministicBySeed) {
  Rng GenA(123), GenB(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(GenA.uniformInt(0, 1000), GenB.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange) {
  Rng Generator(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t Value = Generator.uniformInt(-3, 9);
    EXPECT_GE(Value, -3);
    EXPECT_LE(Value, 9);
  }
}

TEST(Rng, UniformRealInRange) {
  Rng Generator(7);
  for (int I = 0; I < 1000; ++I) {
    double Value = Generator.uniformReal(-1.0, 1.0);
    EXPECT_GE(Value, -1.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(Rng, FlipProbabilityRoughlyHolds) {
  Rng Generator(99);
  int Heads = 0;
  for (int I = 0; I < 10000; ++I)
    Heads += Generator.flip(0.25);
  EXPECT_NEAR(Heads / 10000.0, 0.25, 0.03);
}

} // namespace
