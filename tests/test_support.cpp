//===- tests/test_support.cpp - Support-library unit tests ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Checked.h"
#include "support/ErrorOr.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <limits>

using namespace cogent;

namespace {

TEST(StringUtils, SplitBasic) {
  std::vector<std::string> Pieces = split("abcd-aebf-dfce", '-');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "abcd");
  EXPECT_EQ(Pieces[1], "aebf");
  EXPECT_EQ(Pieces[2], "dfce");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  std::vector<std::string> Pieces = split("a--b", '-');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(StringUtils, SplitNoSeparator) {
  std::vector<std::string> Pieces = split("abc", '-');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "abc");
}

TEST(StringUtils, SplitEmptyString) {
  std::vector<std::string> Pieces = split("", '-');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "");
}

TEST(StringUtils, JoinRoundTrip) {
  std::vector<std::string> Pieces = {"abcd", "aebf", "dfce"};
  EXPECT_EQ(join(Pieces, "-"), "abcd-aebf-dfce");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"x"}, "-"), "x");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtils, Indent) {
  EXPECT_EQ(indent(0), "");
  EXPECT_EQ(indent(2), "    ");
}

TEST(ErrorOr, HoldsValue) {
  ErrorOr<int> Result(42);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(*Result, 42);
  EXPECT_TRUE(static_cast<bool>(Result));
}

TEST(ErrorOr, HoldsError) {
  ErrorOr<int> Result = Error("something broke");
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorMessage(), "something broke");
}

TEST(ErrorOr, MoveOnlyFriendly) {
  ErrorOr<std::unique_ptr<int>> Result(std::make_unique<int>(7));
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(**Result, 7);
}

TEST(Diagnostics, MessageOnlyErrorsAreUnclassified) {
  Error E("legacy failure");
  EXPECT_EQ(E.code(), ErrorCode::Unknown);
  EXPECT_EQ(E.render(), "legacy failure");
}

TEST(Diagnostics, CodeNames) {
  EXPECT_STREQ(errorCodeName(ErrorCode::InvalidSpec), "InvalidSpec");
  EXPECT_STREQ(errorCodeName(ErrorCode::ExtentOverflow), "ExtentOverflow");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(errorCodeName(ErrorCode::BudgetExceeded), "BudgetExceeded");
  EXPECT_STREQ(errorCodeName(ErrorCode::NoValidConfig), "NoValidConfig");
  EXPECT_STREQ(errorCodeName(ErrorCode::Unknown), "Unknown");
}

TEST(Diagnostics, ContextChainsOutermostFirst) {
  Error E = Error(ErrorCode::InvalidSpec, "bad extent")
                .withContext("parsing entry 3")
                .withContext("loading file.txt");
  EXPECT_EQ(E.code(), ErrorCode::InvalidSpec);
  EXPECT_EQ(E.message(), "bad extent");
  ASSERT_EQ(E.context().size(), 2u);
  EXPECT_EQ(E.context()[0], "loading file.txt");
  EXPECT_EQ(E.context()[1], "parsing entry 3");
  EXPECT_EQ(E.render(), "loading file.txt: parsing entry 3: bad extent");
  EXPECT_EQ(E.renderWithCode(),
            "InvalidSpec: loading file.txt: parsing entry 3: bad extent");
}

TEST(Diagnostics, ErrorOrCarriesCodeAndContext) {
  ErrorOr<int> Result = Error(ErrorCode::NoValidConfig, "nothing survived");
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorCode(), ErrorCode::NoValidConfig);

  ErrorOr<int> Wrapped = std::move(Result).withContext("generating eq1");
  ASSERT_FALSE(Wrapped.hasValue());
  EXPECT_EQ(Wrapped.errorCode(), ErrorCode::NoValidConfig);
  EXPECT_EQ(Wrapped.errorMessage(), "generating eq1: nothing survived");

  // withContext on a value is a no-op pass-through.
  ErrorOr<int> Ok = std::move(ErrorOr<int>(5)).withContext("unused");
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_EQ(*Ok, 5);
}

TEST(Diagnostics, MapTransformsValuesAndPassesErrors) {
  ErrorOr<int> Doubled =
      std::move(ErrorOr<int>(21)).map([](int V) { return V * 2; });
  ASSERT_TRUE(Doubled.hasValue());
  EXPECT_EQ(*Doubled, 42);

  ErrorOr<std::string> Failed =
      std::move(ErrorOr<int>(Error(ErrorCode::BudgetExceeded, "cap")))
          .map([](int V) { return std::to_string(V); });
  ASSERT_FALSE(Failed.hasValue());
  EXPECT_EQ(Failed.errorCode(), ErrorCode::BudgetExceeded);
}

TEST(Diagnostics, TakeErrorRewraps) {
  ErrorOr<int> Source = Error(ErrorCode::ExtentOverflow, "wraps");
  ErrorOr<double> Rewrapped = Source.takeError().withContext("outer");
  ASSERT_FALSE(Rewrapped.hasValue());
  EXPECT_EQ(Rewrapped.errorCode(), ErrorCode::ExtentOverflow);
  EXPECT_EQ(Rewrapped.errorMessage(), "outer: wraps");
}

TEST(Checked, MulDetectsOverflow) {
  int64_t Out = 0;
  EXPECT_TRUE(checkedMulInt64(1 << 20, 1 << 20, &Out));
  EXPECT_EQ(Out, int64_t(1) << 40);
  EXPECT_TRUE(checkedMulInt64(-7, 6, &Out));
  EXPECT_EQ(Out, -42);
  EXPECT_FALSE(checkedMulInt64(int64_t(1) << 32, int64_t(1) << 32, &Out));
  EXPECT_FALSE(checkedMulInt64(std::numeric_limits<int64_t>::max(), 2, &Out));
  EXPECT_TRUE(checkedMulInt64(std::numeric_limits<int64_t>::max(), 1, &Out));
}

TEST(Rng, DeterministicBySeed) {
  Rng GenA(123), GenB(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(GenA.uniformInt(0, 1000), GenB.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange) {
  Rng Generator(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t Value = Generator.uniformInt(-3, 9);
    EXPECT_GE(Value, -3);
    EXPECT_LE(Value, 9);
  }
}

TEST(Rng, UniformRealInRange) {
  Rng Generator(7);
  for (int I = 0; I < 1000; ++I) {
    double Value = Generator.uniformReal(-1.0, 1.0);
    EXPECT_GE(Value, -1.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(Rng, FlipProbabilityRoughlyHolds) {
  Rng Generator(99);
  int Heads = 0;
  for (int I = 0; I < 10000; ++I)
    Heads += Generator.flip(0.25);
  EXPECT_NEAR(Heads / 10000.0, 0.25, 0.03);
}

} // namespace
