//===- tests/test_telemetry.cpp - Metrics, timelines and exporters ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry subsystem's contract, in four bundles:
///
///  - Histogram math: quantile estimates stay inside the documented
///    relative error bound against exact sorted percentiles on randomized
///    samples; bucket boundaries land deterministically; per-thread shard
///    merges equal one histogram fed all samples; percentileMs (the exact
///    reference implementation) handles empty/one/two-sample inputs.
///  - Timeline completeness: every request the service sees — plain runs
///    and chaos storms over all injection sites — yields a timeline that
///    starts with 'submitted' and ends with exactly one terminal event
///    matching the typed outcome; request ids are unique; nothing is
///    orphaned.
///  - Exporters: the JSON snapshot and the Prometheus text render the
///    same registry state (values cross-checked after a parse of each);
///    the JSON-lines event sink emits one valid, kind-decodable object
///    per line.
///  - The perf-regression gate: bench_compare accepts the checked-in
///    BENCH_service.json and rejects a synthetically degraded copy.
///
//===----------------------------------------------------------------------===//

#include "service/GenerationService.h"
#include "service/Telemetry.h"
#include "support/FaultInjection.h"
#include "support/JsonValue.h"
#include "support/JsonWriter.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cogent;
using service::GenerationService;
using service::RequestEvent;
using service::RequestEventKind;
using service::ServiceOptions;
using service::ServiceRequest;
using service::ServiceResult;
using service::ServiceStats;
using service::ServiceTelemetry;
using service::TelemetryOptions;
using support::ConcurrentHistogram;
using support::JsonValue;
using support::LatencyHistogram;
using support::MetricRegistry;

namespace {

/// Deterministic xorshift; no global RNG so runs reproduce exactly.
uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

/// Uniform double in [0, 1).
double nextUnit(uint64_t &State) {
  return static_cast<double>(nextRand(State) >> 11) * 0x1p-53;
}

/// The exact order statistic quantileMs estimates: rank ceil(P/100 * N),
/// 1-based, clamped.
double exactQuantile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  double N = static_cast<double>(Samples.size());
  size_t Rank = static_cast<size_t>(std::ceil(P / 100.0 * N));
  Rank = std::min(std::max<size_t>(Rank, 1), Samples.size());
  return Samples[Rank - 1];
}

//===----------------------------------------------------------------------===//
// Histogram math
//===----------------------------------------------------------------------===//

TEST(LatencyHistogram, EmptyAndSingleSample) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantileMs(50.0), 0.0);
  EXPECT_EQ(H.minMs(), 0.0);
  EXPECT_EQ(H.maxMs(), 0.0);
  EXPECT_EQ(H.meanMs(), 0.0);

  H.record(3.5);
  EXPECT_EQ(H.count(), 1u);
  // One sample: min == max == the sample, and the clamp forces every
  // quantile to the exact value regardless of bucket width.
  EXPECT_EQ(H.minMs(), 3.5);
  EXPECT_EQ(H.maxMs(), 3.5);
  for (double P : {0.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(H.quantileMs(P), 3.5) << "P=" << P;
}

TEST(LatencyHistogram, BucketBoundariesAreDeterministic) {
  // A value exactly on a bucket's lower edge belongs to that bucket, and
  // every edge is consistent: lower(i) == upper(i-1).
  for (unsigned I = 1; I + 1 < LatencyHistogram::NumBuckets; ++I) {
    double Lower = LatencyHistogram::bucketLowerMs(I);
    EXPECT_EQ(LatencyHistogram::bucketIndex(Lower), I) << "bucket " << I;
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucketUpperMs(I - 1), Lower);
  }
  // Underflow: zero, negatives and sub-minimum values land in bucket 0.
  EXPECT_EQ(LatencyHistogram::bucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(-1.0), 0u);
  EXPECT_EQ(
      LatencyHistogram::bucketIndex(LatencyHistogram::MinTrackableMs / 2.0),
      0u);
  // The first regular bucket starts exactly at MinTrackableMs.
  EXPECT_EQ(LatencyHistogram::bucketIndex(LatencyHistogram::MinTrackableMs),
            1u);
  // Overflow: at and beyond maxTrackableMs.
  EXPECT_EQ(LatencyHistogram::bucketIndex(LatencyHistogram::maxTrackableMs()),
            LatencyHistogram::NumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucketIndex(1e18),
            LatencyHistogram::NumBuckets - 1);
}

TEST(LatencyHistogram, QuantilesWithinDocumentedBoundOnRandomSamples) {
  const double Bound = LatencyHistogram::quantileErrorBound();
  // A little float headroom on top of the documented bound; the bound
  // itself is the math of geometric-mean representatives, not of fp
  // rounding.
  const double Slack = 1e-9;
  uint64_t Rng = 0x2545F4914F6CDD1Dull;
  for (int Trial = 0; Trial < 5; ++Trial) {
    LatencyHistogram H;
    std::vector<double> Samples;
    // Log-uniform over ~7 decades — exercises many octaves at once.
    for (int I = 0; I < 4000; ++I) {
      double Ms = std::pow(10.0, nextUnit(Rng) * 7.0 - 2.0);
      Samples.push_back(Ms);
      H.record(Ms);
    }
    EXPECT_EQ(H.count(), Samples.size());
    for (double P : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
      double Exact = exactQuantile(Samples, P);
      double Estimate = H.quantileMs(P);
      EXPECT_LE(std::abs(Estimate - Exact) / Exact, Bound + Slack)
          << "trial " << Trial << " P" << P << ": estimate " << Estimate
          << " vs exact " << Exact;
    }
  }
}

TEST(LatencyHistogram, MergeEqualsSingleHistogram) {
  uint64_t Rng = 7;
  LatencyHistogram Whole, PartA, PartB;
  for (int I = 0; I < 2000; ++I) {
    double Ms = nextUnit(Rng) * 100.0;
    Whole.record(Ms);
    (I % 2 ? PartA : PartB).record(Ms);
  }
  PartA.merge(PartB);
  EXPECT_EQ(PartA.count(), Whole.count());
  // Bucket counts are integers and merge exactly; the running sum is a
  // double accumulated in a different order, so only near-equality holds.
  EXPECT_NEAR(PartA.sumMs(), Whole.sumMs(), 1e-9 * Whole.sumMs());
  EXPECT_EQ(PartA.minMs(), Whole.minMs());
  EXPECT_EQ(PartA.maxMs(), Whole.maxMs());
  for (unsigned I = 0; I < LatencyHistogram::NumBuckets; ++I)
    EXPECT_EQ(PartA.bucketCount(I), Whole.bucketCount(I)) << "bucket " << I;
  for (double P : {50.0, 90.0, 99.0})
    EXPECT_DOUBLE_EQ(PartA.quantileMs(P), Whole.quantileMs(P));
}

TEST(ConcurrentHistogram, CrossThreadShardMergeIsDeterministic) {
  ConcurrentHistogram Concurrent(4);
  LatencyHistogram Reference;
  // Every thread records a deterministic per-thread sequence; the
  // reference gets all of them. Bucket-wise merge is exact, so the merged
  // view must equal the reference no matter how threads were sharded.
  const unsigned NumThreads = 8;
  const int PerThread = 500;
  std::vector<std::vector<double>> PerThreadSamples(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    uint64_t Rng = 0x9e3779b97f4a7c15ull + T;
    for (int I = 0; I < PerThread; ++I)
      PerThreadSamples[T].push_back(nextUnit(Rng) * 50.0 + 0.001);
  }
  for (const std::vector<double> &Samples : PerThreadSamples)
    for (double Ms : Samples)
      Reference.record(Ms);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (double Ms : PerThreadSamples[T])
        Concurrent.record(Ms);
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  LatencyHistogram Merged = Concurrent.merged();
  EXPECT_EQ(Merged.count(), Reference.count());
  EXPECT_EQ(Merged.minMs(), Reference.minMs());
  EXPECT_EQ(Merged.maxMs(), Reference.maxMs());
  for (unsigned I = 0; I < LatencyHistogram::NumBuckets; ++I)
    EXPECT_EQ(Merged.bucketCount(I), Reference.bucketCount(I))
        << "bucket " << I;
  // Shards partition the samples: their counts add up to the whole.
  uint64_t ShardTotal = 0;
  for (size_t S = 0; S < Concurrent.numShards(); ++S)
    ShardTotal += Concurrent.shardSnapshot(S).count();
  EXPECT_EQ(ShardTotal, Reference.count());
  // Determinism: asking twice gives the identical distribution.
  LatencyHistogram Again = Concurrent.merged();
  for (double P : {50.0, 90.0, 99.0, 99.9})
    EXPECT_DOUBLE_EQ(Again.quantileMs(P), Merged.quantileMs(P));
}

TEST(PercentileMs, EdgeCases) {
  // The deprecated exact-sort shim stays total on degenerate inputs: it
  // is the reference the histogram tests compare against.
  EXPECT_EQ(GenerationService::percentileMs({}, 50.0), 0.0);
  EXPECT_EQ(GenerationService::percentileMs({}, 0.0), 0.0);

  for (double P : {0.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(GenerationService::percentileMs({4.25}, P), 4.25);

  // Two samples: linear interpolation on rank (P/100)*(N-1).
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs({1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs({3.0, 1.0}, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs({1.0, 3.0}, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(GenerationService::percentileMs({1.0, 3.0}, 75.0), 2.5);
}

//===----------------------------------------------------------------------===//
// Registry and exporters
//===----------------------------------------------------------------------===//

TEST(MetricRegistry, JsonAndPrometheusRenderTheSameState) {
  MetricRegistry Registry;
  Registry.counter("service.submitted", "requests in").add(42);
  Registry.counter("service.failed").add(3);
  Registry.gauge("service.queue-depth").set(7.5);
  ConcurrentHistogram &H = Registry.histogram("service.latency-ms");
  for (int I = 1; I <= 100; ++I)
    H.record(static_cast<double>(I));

  EXPECT_EQ(Registry.kindOf("service.submitted"),
            support::MetricKind::Counter);
  EXPECT_EQ(Registry.kindOf("service.queue-depth"),
            support::MetricKind::Gauge);
  EXPECT_EQ(Registry.kindOf("service.latency-ms"),
            support::MetricKind::Histogram);
  EXPECT_FALSE(Registry.kindOf("no.such.metric").has_value());

  std::string Json = Registry.renderJson();
  std::string Err;
  ASSERT_TRUE(support::validateJson(Json, &Err)) << Err << "\n" << Json;
  ErrorOr<JsonValue> Parsed = support::parseJson(Json);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.errorMessage();

  const JsonValue *Counters = Parsed->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->findNumber("service.submitted"), 42.0);
  EXPECT_EQ(Counters->findNumber("service.failed"), 3.0);
  const JsonValue *Gauges = Parsed->find("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_EQ(Gauges->findNumber("service.queue-depth"), 7.5);
  const JsonValue *Hists = Parsed->find("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *Latency = Hists->find("service.latency-ms");
  ASSERT_NE(Latency, nullptr);
  EXPECT_EQ(Latency->findNumber("count"), 100.0);
  ASSERT_TRUE(Latency->findNumber("p50_ms").has_value());

  // The Prometheus text must carry the same values for the same metrics.
  std::string Prom = Registry.renderPrometheus("cogent");
  std::map<std::string, double> PromSamples;
  std::istringstream Lines(Prom);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    PromSamples[Line.substr(0, Space)] =
        std::strtod(Line.c_str() + Space + 1, nullptr);
  }
  EXPECT_EQ(PromSamples.at("cogent_service_submitted_total"), 42.0);
  EXPECT_EQ(PromSamples.at("cogent_service_failed_total"), 3.0);
  EXPECT_EQ(PromSamples.at("cogent_service_queue_depth"), 7.5);
  EXPECT_EQ(PromSamples.at("cogent_service_latency_ms_count"), 100.0);
  LatencyHistogram Merged = H.merged();
  EXPECT_EQ(PromSamples.at("cogent_service_latency_ms{quantile=\"0.5\"}"),
            Merged.quantileMs(50.0));
  EXPECT_EQ(PromSamples.at("cogent_service_latency_ms{quantile=\"0.99\"}"),
            Merged.quantileMs(99.0));
  EXPECT_EQ(PromSamples.at("cogent_service_latency_ms_sum"), Merged.sumMs());

  // Round-trip law: every JSON counter/gauge appears in the Prometheus
  // text with the same value (histograms checked above).
  for (const auto &[Name, Value] : Counters->asObject())
    EXPECT_EQ(PromSamples.at("cogent_" + support::prometheusName(Name) +
                             "_total"),
              Value.asNumber())
        << Name;
  for (const auto &[Name, Value] : Gauges->asObject())
    EXPECT_EQ(PromSamples.at("cogent_" + support::prometheusName(Name)),
              Value.asNumber())
        << Name;
}

TEST(ServiceTelemetry, EventRingIsBoundedAndCountsDrops) {
  TelemetryOptions Options;
  Options.EventCapacity = 8;
  ServiceTelemetry Telemetry(Options);
  for (int I = 0; I < 20; ++I)
    Telemetry.recordEvent(Telemetry.beginRequest(),
                          RequestEventKind::Submitted);
  EXPECT_EQ(Telemetry.eventsRecorded(), 20u);
  EXPECT_EQ(Telemetry.events().size(), 8u);
  EXPECT_EQ(Telemetry.eventsDropped(), 12u);
  // The ring keeps the newest events: ids 13..20 survive.
  EXPECT_EQ(Telemetry.events().front().RequestId, 13u);
  EXPECT_EQ(Telemetry.events().back().RequestId, 20u);
}

TEST(ServiceTelemetry, JsonlSinkEmitsOneValidObjectPerLine) {
  std::string Path = ::testing::TempDir() + "telemetry_events.jsonl";
  {
    TelemetryOptions Options;
    Options.EventLogJsonlPath = Path;
    ServiceTelemetry Telemetry(Options);
    uint64_t Id = Telemetry.beginRequest();
    Telemetry.recordEvent(Id, RequestEventKind::Submitted, "ab-ac-cb");
    Telemetry.recordEvent(Id, RequestEventKind::Dequeued, "0.25");
    Telemetry.recordEvent(Id, RequestEventKind::Completed,
                          "none \"quoted\" \\ detail");
  }
  std::ifstream File(Path);
  ASSERT_TRUE(File.good());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(File, Line)) {
    ++Lines;
    std::string Err;
    EXPECT_TRUE(support::validateJson(Line, &Err)) << Err << "\n" << Line;
    ErrorOr<JsonValue> Parsed = support::parseJson(Line);
    ASSERT_TRUE(Parsed.hasValue());
    EXPECT_EQ(Parsed->findNumber("request"), 1.0);
    const JsonValue *Kind = Parsed->find("event");
    ASSERT_NE(Kind, nullptr);
    EXPECT_TRUE(
        service::requestEventKindFromName(Kind->asString()).has_value())
        << Kind->asString();
    ASSERT_TRUE(Parsed->findNumber("at_ms").has_value());
  }
  EXPECT_EQ(Lines, 3u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Request timelines
//===----------------------------------------------------------------------===//

/// Groups the retained events by request id, in record order.
std::map<uint64_t, std::vector<RequestEvent>>
timelines(const ServiceTelemetry &Telemetry) {
  std::map<uint64_t, std::vector<RequestEvent>> ById;
  for (const RequestEvent &Event : Telemetry.events())
    ById[Event.RequestId].push_back(Event);
  return ById;
}

/// The timeline law: first event 'submitted', exactly one terminal event,
/// and it is the last. \p ExpectTerminal, when set, pins its kind.
void checkTimeline(const std::vector<RequestEvent> &Timeline,
                   std::optional<RequestEventKind> ExpectTerminal,
                   uint64_t Id) {
  ASSERT_FALSE(Timeline.empty()) << "request " << Id << " has no events";
  EXPECT_EQ(Timeline.front().Kind, RequestEventKind::Submitted)
      << "request " << Id;
  size_t Terminals = 0;
  for (const RequestEvent &Event : Timeline)
    Terminals += service::isTerminalEvent(Event.Kind) ? 1 : 0;
  EXPECT_EQ(Terminals, 1u) << "request " << Id;
  EXPECT_TRUE(service::isTerminalEvent(Timeline.back().Kind))
      << "request " << Id << " ends with "
      << service::requestEventKindName(Timeline.back().Kind);
  if (ExpectTerminal) {
    EXPECT_EQ(Timeline.back().Kind, *ExpectTerminal) << "request " << Id;
  }
  // Timestamps never run backwards within one timeline.
  for (size_t I = 1; I < Timeline.size(); ++I)
    EXPECT_GE(Timeline[I].AtMs, Timeline[I - 1].AtMs) << "request " << Id;
}

TEST(ServiceTimelines, PlainRunProducesCompleteTimelines) {
  ServiceOptions Options;
  Options.NumWorkers = 4;
  GenerationService Service(gpu::makeV100(), Options);

  std::vector<ServiceRequest> Requests;
  for (const char *Spec : {"ab-ac-cb", "abc-abd-dc", "ij-ik-kj"})
    for (int Repeat = 0; Repeat < 3; ++Repeat) {
      ServiceRequest Request;
      Request.Spec = Spec;
      for (char C = 'a'; C <= 'z'; ++C)
        if (std::string(Spec).find(C) != std::string::npos)
          Request.Extents.emplace_back(C, 12);
      Requests.push_back(std::move(Request));
    }
  std::vector<ErrorOr<ServiceResult>> Results =
      Service.processBatch(Requests);

  std::set<uint64_t> SeenIds;
  for (const ErrorOr<ServiceResult> &Result : Results) {
    ASSERT_TRUE(Result.hasValue()) << Result.errorMessage();
    EXPECT_NE(Result->RequestId, 0u);
    EXPECT_TRUE(SeenIds.insert(Result->RequestId).second)
        << "duplicate request id " << Result->RequestId;
  }

  auto ById = timelines(Service.telemetry());
  EXPECT_EQ(ById.size(), Requests.size());
  for (const auto &[Id, Timeline] : ById)
    checkTimeline(Timeline, RequestEventKind::Completed, Id);
  // Completed results carry the id their timeline is filed under.
  for (const ErrorOr<ServiceResult> &Result : Results)
    EXPECT_EQ(ById.count(Result->RequestId), 1u);
  // A coalesced or cache-served request says so in its timeline.
  for (const auto &[Id, Timeline] : ById) {
    bool SawCacheHit = false, SawCoalesced = false;
    for (const RequestEvent &Event : Timeline) {
      SawCacheHit |= Event.Kind == RequestEventKind::CacheHit;
      SawCoalesced |= Event.Kind == RequestEventKind::Coalesced;
    }
    (void)SawCacheHit;
    (void)SawCoalesced;
  }
}

TEST(ServiceTimelines, ShedRequestsGetTerminalShedEvents) {
  ServiceOptions Options;
  Options.NumWorkers = 0; // requests queue forever until stop()
  Options.QueueCapacity = 2;
  Options.MaxOutstanding = 2;
  Options.StartPaused = true;
  GenerationService Service(gpu::makeV100(), Options);

  ServiceRequest Request;
  Request.Spec = "ab-ac-cb";
  Request.Extents = {{'a', 8}, {'b', 8}, {'c', 8}};

  auto First = Service.submit(Request);
  auto Second = Service.submit(Request);
  ASSERT_TRUE(First.hasValue());
  ASSERT_TRUE(Second.hasValue());
  auto Third = Service.submit(Request); // over MaxOutstanding -> shed
  EXPECT_FALSE(Third.hasValue());

  ServiceRequest Expired = Request;
  Expired.DeadlineMs = -1.0; // pre-expired -> shed at submit
  EXPECT_FALSE(Service.process(Expired).hasValue());

  Service.stop(); // queued requests fail typed (ServiceStopped)

  auto ById = timelines(Service.telemetry());
  ASSERT_EQ(ById.size(), 4u);
  std::multiset<RequestEventKind> Terminals;
  for (const auto &[Id, Timeline] : ById) {
    checkTimeline(Timeline, std::nullopt, Id);
    Terminals.insert(Timeline.back().Kind);
  }
  EXPECT_EQ(Terminals.count(RequestEventKind::Shed), 2u);
  EXPECT_EQ(Terminals.count(RequestEventKind::Failed), 2u);
}

TEST(ServiceTimelines, SnapshotAndPrometheusAgreeOnServiceState) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  GenerationService Service(gpu::makeV100(), Options);
  ServiceRequest Request;
  Request.Spec = "ab-ac-cb";
  Request.Extents = {{'a', 16}, {'b', 16}, {'c', 16}};
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(Service.process(Request).hasValue());

  std::string Json = Service.telemetrySnapshot();
  std::string Err;
  ASSERT_TRUE(support::validateJson(Json, &Err)) << Err;
  ErrorOr<JsonValue> Parsed = support::parseJson(Json);
  ASSERT_TRUE(Parsed.hasValue());
  const JsonValue *Counters = Parsed->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->findNumber("service.submitted"), 4.0);
  EXPECT_EQ(Counters->findNumber("service.completed"), 4.0);
  EXPECT_EQ(Counters->findNumber("cache.hits"), 3.0);
  const JsonValue *Hists = Parsed->find("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *Latency = Hists->find("service.latency-ms");
  ASSERT_NE(Latency, nullptr);
  EXPECT_EQ(Latency->findNumber("count"), 4.0);

  std::string Prom = Service.telemetryPrometheus();
  EXPECT_NE(Prom.find("cogent_service_submitted_total 4"),
            std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("cogent_service_completed_total 4"),
            std::string::npos);
  EXPECT_NE(Prom.find("cogent_cache_hits_total 3"), std::string::npos);
  EXPECT_NE(Prom.find("cogent_service_latency_ms_count 4"),
            std::string::npos);
}

#ifdef COGENT_CHAOS_ENABLED
TEST(ServiceTimelines, ChaosStormKeepsEveryTimelineComplete) {
  for (uint64_t Seed : {1ull, 7ull, 23ull}) {
    ServiceOptions Options;
    Options.NumWorkers = 4;
    Options.MaxRetries = 2;
    Options.RetryBackoffBaseMs = 0.05;
    Options.RetryBackoffMaxMs = 0.5;
    Options.Generation.Chaos.Seed = Seed;
    Options.Generation.Chaos.Sites = support::AllChaosSites; // all 8 sites
    Options.Generation.Chaos.FireProbability = 0.25;
    GenerationService Service(gpu::makeV100(), Options);

    const std::vector<const char *> Specs = {"ab-ac-cb", "abc-abd-dc",
                                             "ij-ik-kj"};
    std::atomic<uint64_t> Completed{0}, Failed{0};
    std::vector<std::thread> Clients;
    for (unsigned C = 0; C < 4; ++C)
      Clients.emplace_back([&, C] {
        for (unsigned R = 0; R < 8; ++R) {
          ServiceRequest Request;
          Request.Spec = Specs[(C + R) % Specs.size()];
          for (char Ch = 'a'; Ch <= 'z'; ++Ch)
            if (std::string(Request.Spec).find(Ch) != std::string::npos)
              Request.Extents.emplace_back(Ch, 12);
          if (R % 3 == 2)
            Request.DeadlineMs = 4.0; // force deadline banding mid-storm
          ErrorOr<ServiceResult> Result = Service.process(Request);
          if (Result) {
            EXPECT_NE(Result->RequestId, 0u);
            Completed.fetch_add(1, std::memory_order_relaxed);
          } else {
            Failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    for (std::thread &Client : Clients)
      Client.join();

    ServiceStats Stats = Service.stats();
    auto ById = timelines(Service.telemetry());
    // No orphaned or duplicate ids: one timeline per submitted request
    // (ids are unique by construction; the map collapses duplicates, so
    // equality means both laws hold), each with exactly one terminal
    // event.
    EXPECT_EQ(ById.size(), Stats.Submitted) << "seed " << Seed;
    uint64_t Completions = 0, Failures = 0, Sheds = 0;
    for (const auto &[Id, Timeline] : ById) {
      checkTimeline(Timeline, std::nullopt, Id);
      switch (Timeline.back().Kind) {
      case RequestEventKind::Completed: ++Completions; break;
      case RequestEventKind::Failed: ++Failures; break;
      default: ++Sheds; break;
      }
    }
    // Terminal events match the typed outcomes the clients observed and
    // the stats conservation law.
    EXPECT_EQ(Completions, Stats.Completed) << "seed " << Seed;
    EXPECT_EQ(Completions, Completed.load()) << "seed " << Seed;
    EXPECT_EQ(Failures, Stats.Failed) << "seed " << Seed;
    EXPECT_EQ(Sheds, Stats.ShedQueueFull + Stats.ShedOverloaded +
                         Stats.ShedExpired)
        << "seed " << Seed;
    EXPECT_EQ(Completed.load() + Failed.load(), 32u) << "seed " << Seed;
  }
}
#endif // COGENT_CHAOS_ENABLED

//===----------------------------------------------------------------------===//
// The bench_compare perf gate
//===----------------------------------------------------------------------===//

#if defined(BENCH_COMPARE_PATH) && defined(BENCH_SERVICE_JSON)
int runBenchCompare(const std::string &Args) {
  std::string Command = std::string(BENCH_COMPARE_PATH) + " " + Args +
                        " > /dev/null 2>&1";
  int Status = std::system(Command.c_str());
  return Status < 0 ? Status : WEXITSTATUS(Status);
}

TEST(BenchCompareGate, AcceptsCheckedInBaseline) {
  EXPECT_EQ(runBenchCompare(std::string("--schema ") + BENCH_SERVICE_JSON),
            0);
  EXPECT_EQ(runBenchCompare(std::string("--fresh ") + BENCH_SERVICE_JSON +
                            " --baseline " + BENCH_SERVICE_JSON),
            0);
}

TEST(BenchCompareGate, RejectsDegradedReportAndBadUsage) {
  // Synthetically degrade the checked-in report: halve throughput well
  // past the tolerance and blow up p99.
  std::ifstream Baseline(BENCH_SERVICE_JSON);
  ASSERT_TRUE(Baseline.good());
  std::stringstream Buffer;
  Buffer << Baseline.rdbuf();
  std::string Text = Buffer.str();
  ErrorOr<JsonValue> Parsed = support::parseJson(Text);
  ASSERT_TRUE(Parsed.hasValue());
  double Throughput =
      Parsed->findNumber("throughput_req_per_s").value_or(0.0);
  ASSERT_GT(Throughput, 0.0);

  auto ReplaceNumber = [&](const std::string &Key, double Value) {
    size_t KeyPos = Text.find("\"" + Key + "\":");
    ASSERT_NE(KeyPos, std::string::npos) << Key;
    size_t Start = KeyPos + Key.size() + 3;
    size_t End = Text.find_first_of(",}", Start);
    ASSERT_NE(End, std::string::npos);
    char Formatted[64];
    std::snprintf(Formatted, sizeof(Formatted), "%.17g", Value);
    Text.replace(Start, End - Start, Formatted);
  };
  ReplaceNumber("throughput_req_per_s", Throughput * 0.01);

  std::string DegradedPath = ::testing::TempDir() + "degraded_bench.json";
  std::ofstream Out(DegradedPath);
  Out << Text;
  Out.close();

  EXPECT_EQ(runBenchCompare("--fresh " + DegradedPath + " --baseline " +
                            BENCH_SERVICE_JSON),
            1);
  // Same degraded report still schema-validates (conservation untouched).
  EXPECT_EQ(runBenchCompare("--schema " + DegradedPath), 0);
  // Usage errors exit 2.
  EXPECT_EQ(runBenchCompare(""), 2);
  EXPECT_EQ(runBenchCompare("--fresh " + DegradedPath), 2);
  // A missing file is an invalid-report failure, not a usage error.
  EXPECT_EQ(runBenchCompare("--schema /no/such/report.json"), 1);
  std::remove(DegradedPath.c_str());
}
#endif // BENCH_COMPARE_PATH && BENCH_SERVICE_JSON

} // namespace
