//===- tests/test_tensor.cpp - Dense tensor + reference oracle tests -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tensor/Reference.h"
#include "tensor/Tensor.h"

#include <gtest/gtest.h>

using namespace cogent;
using ir::Contraction;
using ir::Operand;
using tensor::Tensor;

namespace {

TEST(Tensor, ShapeAndStrides) {
  Tensor<double> T({2, 3, 4});
  EXPECT_EQ(T.rank(), 3u);
  EXPECT_EQ(T.numElements(), 24);
  EXPECT_EQ(T.strides(), (std::vector<int64_t>{1, 2, 6}));
}

TEST(Tensor, OffsetOfColumnMajor) {
  Tensor<double> T({2, 3, 4});
  EXPECT_EQ(T.offsetOf({0, 0, 0}), 0);
  EXPECT_EQ(T.offsetOf({1, 0, 0}), 1);
  EXPECT_EQ(T.offsetOf({0, 1, 0}), 2);
  EXPECT_EQ(T.offsetOf({0, 0, 1}), 6);
  EXPECT_EQ(T.offsetOf({1, 2, 3}), 1 + 4 + 18);
}

TEST(Tensor, ElementAccess) {
  Tensor<double> T({2, 2});
  T({1, 0}) = 3.5;
  EXPECT_DOUBLE_EQ(T.at(1), 3.5);
  EXPECT_DOUBLE_EQ(T({1, 0}), 3.5);
}

TEST(Tensor, FillSequentialMatchesLayout) {
  Tensor<float> T({3, 2});
  T.fillSequential();
  EXPECT_FLOAT_EQ(T({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(T({2, 0}), 2.0f);
  EXPECT_FLOAT_EQ(T({0, 1}), 3.0f);
}

TEST(Tensor, FillRandomDeterministicAndZero) {
  Rng GenA(5), GenB(5);
  Tensor<double> X({4, 4}), Y({4, 4});
  X.fillRandom(GenA);
  Y.fillRandom(GenB);
  EXPECT_EQ(tensor::maxAbsDifference(X, Y), 0.0);
  X.fillZero();
  EXPECT_EQ(X.sum(), 0.0);
}

TEST(Tensor, MaxAbsDifference) {
  Tensor<double> X({2, 2}), Y({2, 2});
  X({1, 1}) = 2.0;
  Y({1, 1}) = -1.0;
  EXPECT_DOUBLE_EQ(tensor::maxAbsDifference(X, Y), 3.0);
}

TEST(Odometer, WalksColumnMajorOrder) {
  std::vector<int64_t> Shape = {2, 3};
  std::vector<int64_t> Index(2, 0);
  std::vector<std::vector<int64_t>> Seen;
  do {
    Seen.push_back(Index);
  } while (tensor::advanceOdometer(Index, Shape));
  ASSERT_EQ(Seen.size(), 6u);
  EXPECT_EQ(Seen[0], (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(Seen[1], (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(Seen[2], (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(Seen[5], (std::vector<int64_t>{1, 2}));
}

TEST(Odometer, EmptyShapeTerminatesImmediately) {
  std::vector<int64_t> Shape, Index;
  EXPECT_FALSE(tensor::advanceOdometer(Index, Shape));
}

TEST(Reference, MatrixMultiplyHandComputed) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-ik-kj", 2);
  ASSERT_TRUE(TC.hasValue());
  Tensor<double> A = tensor::makeOperand<double>(*TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(*TC, Operand::B);
  // A = [1 3; 2 4] (column-major [i,k]), B = [5 7; 6 8].
  A({0, 0}) = 1;
  A({1, 0}) = 2;
  A({0, 1}) = 3;
  A({1, 1}) = 4;
  B({0, 0}) = 5;
  B({1, 0}) = 6;
  B({0, 1}) = 7;
  B({1, 1}) = 8;
  Tensor<double> C = tensor::makeOperand<double>(*TC, Operand::C);
  tensor::contractReference(*TC, C, A, B);
  EXPECT_DOUBLE_EQ(C({0, 0}), 1 * 5 + 3 * 6);
  EXPECT_DOUBLE_EQ(C({1, 0}), 2 * 5 + 4 * 6);
  EXPECT_DOUBLE_EQ(C({0, 1}), 1 * 7 + 3 * 8);
  EXPECT_DOUBLE_EQ(C({1, 1}), 2 * 7 + 4 * 8);
}

TEST(Reference, OuterProduct) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-i-j", 3);
  ASSERT_TRUE(TC.hasValue());
  Tensor<double> A = tensor::makeOperand<double>(*TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(*TC, Operand::B);
  A.fillSequential();
  B.fillSequential();
  Tensor<double> C = tensor::makeOperand<double>(*TC, Operand::C);
  tensor::contractReference(*TC, C, A, B);
  for (int64_t I = 0; I < 3; ++I)
    for (int64_t J = 0; J < 3; ++J)
      EXPECT_DOUBLE_EQ(C({I, J}), static_cast<double>(I * J));
}

TEST(Reference, FullReductionToVector) {
  // C[i] = sum_k A[i,k] * B[k]: a matrix-vector product.
  ErrorOr<Contraction> TC = Contraction::parseUniform("i-ik-k", 3);
  ASSERT_TRUE(TC.hasValue());
  Tensor<double> A = tensor::makeOperand<double>(*TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(*TC, Operand::B);
  A.fillSequential(); // A[i,k] = i + 3k
  B.fillSequential(); // B[k] = k
  Tensor<double> C = tensor::makeOperand<double>(*TC, Operand::C);
  tensor::contractReference(*TC, C, A, B);
  for (int64_t I = 0; I < 3; ++I) {
    double Expected = 0;
    for (int64_t K = 0; K < 3; ++K)
      Expected += (I + 3.0 * K) * K;
    EXPECT_DOUBLE_EQ(C({I}), Expected);
  }
}

TEST(Reference, PermutedOperandLayouts) {
  // Same computation expressed with permuted A/B layouts must agree.
  ErrorOr<Contraction> TC1 = Contraction::parseUniform("ij-ik-kj", 4);
  ErrorOr<Contraction> TC2 = Contraction::parseUniform("ij-ki-jk", 4);
  ASSERT_TRUE(TC1.hasValue() && TC2.hasValue());
  Rng Generator(3);
  Tensor<double> A1 = tensor::makeOperand<double>(*TC1, Operand::A);
  Tensor<double> B1 = tensor::makeOperand<double>(*TC1, Operand::B);
  A1.fillRandom(Generator);
  B1.fillRandom(Generator);
  // Mirror into the transposed layouts.
  Tensor<double> A2 = tensor::makeOperand<double>(*TC2, Operand::A);
  Tensor<double> B2 = tensor::makeOperand<double>(*TC2, Operand::B);
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t K = 0; K < 4; ++K) {
      A2({K, I}) = A1({I, K});
      B2({I, K}) = B1({K, I}); // B2 is [j,k], B1 is [k,j]
    }
  Tensor<double> C1 = tensor::makeOperand<double>(*TC1, Operand::C);
  Tensor<double> C2 = tensor::makeOperand<double>(*TC2, Operand::C);
  tensor::contractReference(*TC1, C1, A1, B1);
  tensor::contractReference(*TC2, C2, A2, B2);
  EXPECT_LT(tensor::maxAbsDifference(C1, C2), 1e-12);
}

} // namespace
