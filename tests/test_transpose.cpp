//===- tests/test_transpose.cpp - Permutation library tests ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "transpose/Permute.h"
#include "transpose/TransposeModel.h"

#include "gpu/DeviceSpec.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace cogent;
using tensor::Tensor;
using namespace cogent::transpose;

namespace {

TEST(Permutation, Validation) {
  EXPECT_TRUE(isValidPermutation({0, 1, 2}, 3));
  EXPECT_TRUE(isValidPermutation({2, 0, 1}, 3));
  EXPECT_FALSE(isValidPermutation({0, 1}, 3));
  EXPECT_FALSE(isValidPermutation({0, 0, 1}, 3));
  EXPECT_FALSE(isValidPermutation({0, 1, 3}, 3));
}

TEST(Permutation, Inverse) {
  std::vector<unsigned> Perm = {2, 0, 1};
  std::vector<unsigned> Inv = invertPermutation(Perm);
  EXPECT_EQ(Inv, (std::vector<unsigned>{1, 2, 0}));
  for (unsigned I = 0; I < Perm.size(); ++I)
    EXPECT_EQ(Perm[Inv[I]], I);
}

TEST(Permute, MatrixTranspose) {
  Tensor<double> Src({2, 3});
  Src.fillSequential();
  Tensor<double> Dst = permute(Src, {1, 0});
  EXPECT_EQ(Dst.shape(), (std::vector<int64_t>{3, 2}));
  for (int64_t I = 0; I < 2; ++I)
    for (int64_t J = 0; J < 3; ++J)
      EXPECT_DOUBLE_EQ(Dst({J, I}), Src({I, J}));
}

TEST(Permute, IdentityIsCopy) {
  Tensor<double> Src({3, 4, 5});
  Rng Generator(1);
  Src.fillRandom(Generator);
  Tensor<double> Dst = permute(Src, {0, 1, 2});
  EXPECT_EQ(tensor::maxAbsDifference(Src, Dst), 0.0);
}

TEST(Permute, Rank1) {
  Tensor<float> Src({7});
  Src.fillSequential();
  Tensor<float> Dst = permute(Src, {0});
  EXPECT_EQ(tensor::maxAbsDifference(Src, Dst), 0.0f);
}

/// Oracle: element-by-element permutation through multi-indices.
template <typename T>
Tensor<T> permuteNaive(const Tensor<T> &Src,
                       const std::vector<unsigned> &Perm) {
  std::vector<int64_t> DstShape(Perm.size());
  for (size_t I = 0; I < Perm.size(); ++I)
    DstShape[I] = Src.shape()[Perm[I]];
  Tensor<T> Dst(DstShape);
  std::vector<int64_t> DstIdx(Perm.size(), 0);
  if (Dst.numElements() == 0)
    return Dst;
  do {
    std::vector<int64_t> SrcIdx(Perm.size());
    for (size_t I = 0; I < Perm.size(); ++I)
      SrcIdx[Perm[I]] = DstIdx[I];
    Dst(DstIdx) = Src(SrcIdx);
  } while (tensor::advanceOdometer(DstIdx, DstShape));
  return Dst;
}

/// Property sweep: blocked permutation equals the naive oracle across random
/// shapes and permutations, including large-extent blocked paths.
class PermuteProperty : public ::testing::TestWithParam<int> {};

TEST_P(PermuteProperty, MatchesNaive) {
  Rng Generator(GetParam());
  unsigned Rank = static_cast<unsigned>(Generator.uniformInt(1, 5));
  std::vector<int64_t> Shape;
  for (unsigned I = 0; I < Rank; ++I)
    Shape.push_back(Generator.uniformInt(1, 9));
  // Occasionally make a dimension big enough to exercise 32-wide blocks.
  if (Generator.flip(0.4))
    Shape[static_cast<size_t>(Generator.uniformInt(0, Rank - 1))] = 40;
  std::vector<unsigned> Perm(Rank);
  std::iota(Perm.begin(), Perm.end(), 0);
  std::shuffle(Perm.begin(), Perm.end(), Generator.engine());

  Tensor<double> Src(Shape);
  Src.fillRandom(Generator);
  Tensor<double> Fast = permute(Src, Perm);
  Tensor<double> Slow = permuteNaive(Src, Perm);
  ASSERT_EQ(Fast.shape(), Slow.shape());
  EXPECT_EQ(tensor::maxAbsDifference(Fast, Slow), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, PermuteProperty,
                         ::testing::Range(0, 40));

TEST(Permute, RoundTripIsIdentity) {
  Rng Generator(9);
  Tensor<double> Src({4, 6, 3, 5});
  Src.fillRandom(Generator);
  std::vector<unsigned> Perm = {2, 0, 3, 1};
  Tensor<double> There = permute(Src, Perm);
  Tensor<double> Back = permute(There, invertPermutation(Perm));
  EXPECT_EQ(tensor::maxAbsDifference(Src, Back), 0.0);
}

// --- cost model ----------------------------------------------------------

TEST(TransposeModel, IdentityIsFastest) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  std::vector<int64_t> Shape = {64, 64, 64};
  TransposeEstimate Identity =
      estimateTranspose(Device, Calib, Shape, {0, 1, 2}, 8);
  TransposeEstimate Swapped =
      estimateTranspose(Device, Calib, Shape, {2, 1, 0}, 8);
  EXPECT_LT(Identity.TimeMs, Swapped.TimeMs);
  EXPECT_GT(Identity.Efficiency, Swapped.Efficiency);
}

TEST(TransposeModel, BytesMovedIsReadPlusWrite) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  TransposeEstimate Est =
      estimateTranspose(Device, Calib, {32, 32}, {1, 0}, 8);
  EXPECT_DOUBLE_EQ(Est.BytesMoved, 2.0 * 32 * 32 * 8);
}

TEST(TransposeModel, HigherRankIsLessEfficient) {
  // cuTT-style rank penalty: a 6D permutation achieves a lower bandwidth
  // fraction than a 2D transpose of the same volume.
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  TransposeEstimate Matrix =
      estimateTranspose(Device, Calib, {4096, 4096}, {1, 0}, 8);
  TransposeEstimate SixD = estimateTranspose(
      Device, Calib, {16, 16, 16, 16, 16, 16}, {5, 4, 3, 2, 1, 0}, 8);
  EXPECT_GT(Matrix.Efficiency, SixD.Efficiency);
}

TEST(TransposeModel, ShortFviHurtsCoalescing) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  TransposeEstimate Long =
      estimateTranspose(Device, Calib, {256, 256}, {1, 0}, 8);
  TransposeEstimate Short =
      estimateTranspose(Device, Calib, {2, 32768}, {1, 0}, 8);
  EXPECT_GT(Long.Efficiency, Short.Efficiency);
}

TEST(TransposeModel, PreservedPrefixKeepsEfficiency) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  // Leading dimension untouched: contiguous 64-element chunks move.
  TransposeEstimate Prefix =
      estimateTranspose(Device, Calib, {64, 32, 32}, {0, 2, 1}, 8);
  TransposeEstimate Scattered =
      estimateTranspose(Device, Calib, {64, 32, 32}, {2, 1, 0}, 8);
  EXPECT_GT(Prefix.Efficiency, Scattered.Efficiency);
}

} // namespace
