//===- tests/test_verifier.cpp - PlanVerifier + DifferentialChecker --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the verification subsystem: the static PlanVerifier invariants
/// (resource budgets, index coverage, cost lower bound, source
/// plausibility), its wiring into Cogent::generate (every emitted plan is
/// verified in the default build; failures demote down the fallback chain
/// or surface as typed errors), and the DifferentialChecker's
/// simulator-vs-reference execution across the TCCG suite at clamped
/// extents.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "suite/TccgSuite.h"
#include "verify/DifferentialChecker.h"
#include "verify/PlanVerifier.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using core::FallbackLevel;
using ir::Contraction;
using verify::PlanVerifier;

namespace {

/// The contraction a generated kernel actually targets: the matricized
/// GEMM for TTGT fallbacks, the original otherwise.
const Contraction &planContraction(const Contraction &TC,
                                   const core::GenerationResult &R) {
  return R.Fallback == FallbackLevel::TtgtBaseline ? *R.FallbackContraction
                                                   : TC;
}

TEST(TransactionLowerBound, CountsEveryElementOnce) {
  Contraction TC = *Contraction::parseUniform("ij-ik-kj", 32);
  // 3 operands x 32*32 elements x 8 bytes / 32-byte transactions.
  EXPECT_DOUBLE_EQ(verify::transactionLowerBound(TC, 8, 32),
                   3.0 * 32 * 32 * 8 / 32);
  // Halving the element size halves the bound; ditto doubling the bus.
  EXPECT_DOUBLE_EQ(verify::transactionLowerBound(TC, 4, 32),
                   3.0 * 32 * 32 * 4 / 32);
  EXPECT_DOUBLE_EQ(verify::transactionLowerBound(TC, 8, 64),
                   3.0 * 32 * 32 * 8 / 64);
}

TEST(PlanVerifier, AcceptsEveryEmittedSuiteKernel) {
  // The acceptance criterion: in the default build (chaos off) every plan
  // generate() returns passes all three verifier checks against the real
  // device, with zero rejections recorded.
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  PlanVerifier Verifier(Device, 8);
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    CogentOptions Options;
    Options.TopK = 2;
    ErrorOr<core::GenerationResult> Result =
        Generator.generate(Entry.contractionScaled(24), Options);
    ASSERT_TRUE(Result.hasValue()) << Entry.Name;
    EXPECT_EQ(Result->VerifierRejections, 0u) << Entry.Name;
    EXPECT_EQ(Result->Fallback, FallbackLevel::None) << Entry.Name;
    const Contraction PlanTC = Entry.contractionScaled(24);
    for (const core::GeneratedKernel &Kernel : Result->Kernels) {
      core::KernelPlan Plan(PlanTC, Kernel.Config);
      ErrorOr<void> Check =
          Verifier.verifyAll(Plan, Kernel.Cost, Kernel.Source);
      EXPECT_TRUE(Check.hasValue())
          << Entry.Name << ": " << Check.errorMessage();
    }
  }
}

TEST(PlanVerifier, RejectsPlansExceedingDeviceBudgets) {
  // Generate a normal plan for the V100, then verify it against devices
  // whose limits it exceeds: each budget violation must come back as a
  // typed VerificationFailed, not an assert.
  Contraction TC = *Contraction::parseUniform("abcd-aebf-dfce", 32);
  Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  core::KernelPlan Plan(TC, Result->best().Config);
  ASSERT_GT(Plan.threadsPerBlock(), 1u);

  gpu::DeviceSpec TinyThreads = gpu::makeV100();
  TinyThreads.MaxThreadsPerBlock = 32;
  TinyThreads.MaxThreadsPerSM = 64;
  if (Plan.threadsPerBlock() > 32) {
    ErrorOr<void> Check = PlanVerifier(TinyThreads, 8).verifyPlan(Plan);
    ASSERT_FALSE(Check.hasValue());
    EXPECT_EQ(Check.errorCode(), ErrorCode::VerificationFailed);
  }

  gpu::DeviceSpec TinySmem = gpu::makeV100();
  TinySmem.SharedMemPerBlock = 8;
  {
    ErrorOr<void> Check = PlanVerifier(TinySmem, 8).verifyPlan(Plan);
    ASSERT_FALSE(Check.hasValue());
    EXPECT_EQ(Check.errorCode(), ErrorCode::VerificationFailed);
  }

  gpu::DeviceSpec TinyRegs = gpu::makeV100();
  TinyRegs.MaxRegistersPerThread = 1;
  {
    ErrorOr<void> Check = PlanVerifier(TinyRegs, 8).verifyPlan(Plan);
    ASSERT_FALSE(Check.hasValue());
    EXPECT_EQ(Check.errorCode(), ErrorCode::VerificationFailed);
  }
}

TEST(PlanVerifier, RejectsImplausibleCosts) {
  Contraction TC = *Contraction::parseUniform("ij-ik-kj", 64);
  Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  core::KernelPlan Plan(TC, Result->best().Config);
  PlanVerifier Verifier(gpu::makeV100(), 8);

  // The genuine model output passes...
  EXPECT_TRUE(Verifier.verifyCost(Plan, Result->best().Cost).hasValue());

  // ...but a cost below the compulsory-traffic bound, a negative cost and
  // a non-finite cost are each rejected.
  core::TransactionCost TooCheap; // all zero: below any nonzero bound
  EXPECT_EQ(Verifier.verifyCost(Plan, TooCheap).errorCode(),
            ErrorCode::VerificationFailed);

  core::TransactionCost Negative = Result->best().Cost;
  Negative.LoadA = -Negative.LoadA;
  EXPECT_EQ(Verifier.verifyCost(Plan, Negative).errorCode(),
            ErrorCode::VerificationFailed);

  core::TransactionCost NotFinite = Result->best().Cost;
  NotFinite.LoadB = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Verifier.verifyCost(Plan, NotFinite).errorCode(),
            ErrorCode::VerificationFailed);
}

TEST(PlanVerifier, RejectsTruncatedOrBogusSource) {
  Contraction TC = *Contraction::parseUniform("ij-ik-kj", 64);
  Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  PlanVerifier Verifier(gpu::makeV100(), 8);
  const core::GeneratedSource &Good = Result->best().Source;
  EXPECT_TRUE(Verifier.verifySource(Good).hasValue());

  core::GeneratedSource Empty = Good;
  Empty.KernelSource.clear();
  EXPECT_EQ(Verifier.verifySource(Empty).errorCode(),
            ErrorCode::VerificationFailed);

  // Truncation mid-body leaves unbalanced braces.
  core::GeneratedSource Truncated = Good;
  Truncated.KernelSource.resize(Truncated.KernelSource.size() / 2);
  EXPECT_EQ(Verifier.verifySource(Truncated).errorCode(),
            ErrorCode::VerificationFailed);

  core::GeneratedSource Renamed = Good;
  Renamed.KernelName = "not_the_emitted_name";
  EXPECT_EQ(Verifier.verifySource(Renamed).errorCode(),
            ErrorCode::VerificationFailed);
}

TEST(PlanVerifier, UnrescuedFailureIsTypedNotFatal) {
  // A valid device too small for even the TTGT kernel (16 staged bytes):
  // every fallback rung is verified and rejected, and generate() returns
  // the typed unrescued error.
  gpu::DeviceSpec Starved = gpu::makeV100();
  Starved.SharedMemPerBlock = 8;
  ASSERT_TRUE(Starved.validate().hasValue());
  Cogent Generator(Starved);
  Contraction TC = *Contraction::parseUniform("ab-ac-cb", 24);
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.errorCode(), ErrorCode::VerificationFailed);
  EXPECT_FALSE(Result.error().message().empty());
}

TEST(DifferentialChecker, PassesOnEveryTccgSuiteKernel) {
  // Acceptance criterion: the winning configuration of every TCCG entry
  // executes identically to the reference oracle at clamped extents, with
  // the simulator's transaction counts inside the declared tolerance of
  // the model.
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    Contraction TC = Entry.contractionScaled(8);
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
    ASSERT_TRUE(Result.hasValue()) << Entry.Name;
    verify::DifferentialOptions Options;
    Options.MaxExtent = 6;
    Options.Trials = 2;
    ErrorOr<verify::DifferentialReport> Report = verify::runDifferentialCheck(
        planContraction(TC, *Result), Result->best().Config, Device, Options);
    ASSERT_TRUE(Report.hasValue())
        << Entry.Name << ": " << Report.errorMessage();
    EXPECT_GE(Report->TrialsRun, Options.Trials) << Entry.Name;
    EXPECT_LE(Report->MaxRelError, Options.NumericTolerance) << Entry.Name;
    EXPECT_GE(Report->WorstTrafficRatio, 1.0) << Entry.Name;
  }
}

TEST(DifferentialChecker, SpecialValueAndOverflowProbesRun) {
  // NaN/Inf/denormal seeding and the overflow probe are on by default; a
  // clean run on a healthy schedule proves the oracle comparison is
  // NaN-aware and that overflow-prone extents are rejected upstream.
  Contraction TC = *Contraction::parseUniform("abc-abd-dc", 8);
  Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  verify::DifferentialOptions Options;
  Options.Trials = 3;
  ASSERT_TRUE(Options.SeedSpecialValues);
  ASSERT_TRUE(Options.ProbeOverflow);
  ErrorOr<verify::DifferentialReport> Report = verify::runDifferentialCheck(
      TC, Result->best().Config, gpu::makeV100(), Options);
  ASSERT_TRUE(Report.hasValue()) << Report.errorMessage();
  // Trials + the special-value trial actually executed.
  EXPECT_GE(Report->TrialsRun, 4u);
}

TEST(DifferentialChecker, DeterministicAcrossRuns) {
  Contraction TC = *Contraction::parseUniform("ab-ac-cb", 8);
  Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  verify::DifferentialOptions Options;
  Options.Seed = 1234;
  ErrorOr<verify::DifferentialReport> R1 = verify::runDifferentialCheck(
      TC, Result->best().Config, gpu::makeV100(), Options);
  ErrorOr<verify::DifferentialReport> R2 = verify::runDifferentialCheck(
      TC, Result->best().Config, gpu::makeV100(), Options);
  ASSERT_TRUE(R1.hasValue());
  ASSERT_TRUE(R2.hasValue());
  EXPECT_EQ(R1->TrialsRun, R2->TrialsRun);
  EXPECT_DOUBLE_EQ(R1->MaxRelError, R2->MaxRelError);
  EXPECT_DOUBLE_EQ(R1->WorstTrafficRatio, R2->WorstTrafficRatio);
}

TEST(DeviceSpecValidate, AcceptsRealDevicesRejectsNonsense) {
  EXPECT_TRUE(gpu::makeV100().validate().hasValue());
  EXPECT_TRUE(gpu::makeP100().validate().hasValue());

  auto expectInvalid = [](gpu::DeviceSpec Device, const char *What) {
    ErrorOr<void> Check = Device.validate();
    ASSERT_FALSE(Check.hasValue()) << What;
    EXPECT_EQ(Check.errorCode(), ErrorCode::InvalidDeviceSpec) << What;
    EXPECT_FALSE(Check.error().message().empty()) << What;
  };

  gpu::DeviceSpec D = gpu::makeV100();
  D.NumSMs = 0;
  expectInvalid(D, "zero SMs");

  D = gpu::makeV100();
  D.SharedMemPerBlock = 0;
  expectInvalid(D, "zero smem per block");

  D = gpu::makeV100();
  D.SharedMemPerBlock = D.SharedMemPerSM + 1;
  expectInvalid(D, "per-block smem above the SM");

  D = gpu::makeV100();
  D.MaxThreadsPerBlock = D.MaxThreadsPerSM + 1;
  expectInvalid(D, "block threads above the SM");

  D = gpu::makeV100();
  D.TransactionBytes = 100; // not a multiple of 128
  expectInvalid(D, "non-power transaction size");

  D = gpu::makeV100();
  D.DramBandwidthGBs = 0.0;
  expectInvalid(D, "zero bandwidth");

  D = gpu::makeV100();
  D.WarpSize = 0;
  expectInvalid(D, "zero warp size");
}

} // namespace
