//===- tools/bench_compare.cpp - bench_service perf-regression gate -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Diffs a fresh bench_service report against the checked-in baseline
// (BENCH_service.json) and fails on regression, so scripts/run_all.sh can
// gate merges on service throughput/latency. Two modes:
//
//   bench_compare --schema REPORT.json
//       Validates one report in isolation: required keys present and of
//       the right type, every stats tally non-negative, and the stats
//       conservation law (submitted == completed + failed + shed_*).
//
//   bench_compare --fresh FRESH.json --baseline BASELINE.json
//                 [--tolerance F] [--throughput-floor R]
//                 [--latency-slack-ms MS]
//       Schema-checks both reports, then enforces:
//         - throughput >= baseline * (1 - tolerance), and >= the absolute
//           floor when one is given;
//         - p50/p99 latency <= baseline * (1 + tolerance) + slack (the
//           additive slack absorbs scheduler noise on sub-50us medians).
//
// Exit codes follow the repo convention: 0 pass, 1 regression or invalid
// report, 2 usage error. Every verdict line is printed (PASS or FAIL per
// check) so CI logs show the margins, not just the outcome.
//
//===----------------------------------------------------------------------===//

#include "support/JsonValue.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using cogent::ErrorOr;
using cogent::support::JsonValue;
using cogent::support::parseJson;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --schema REPORT.json\n"
      "       %s --fresh FRESH.json --baseline BASELINE.json\n"
      "          [--tolerance F] [--throughput-floor REQ_PER_S]\n"
      "          [--latency-slack-ms MS]\n"
      "\n"
      "Validates bench_service JSON reports and gates on perf regressions.\n"
      "  --schema            validate one report and exit\n"
      "  --tolerance F       relative margin for throughput/latency drift\n"
      "                      (default 0.5, i.e. 50%%)\n"
      "  --throughput-floor  absolute req/s floor on the fresh report\n"
      "  --latency-slack-ms  additive latency allowance on top of the\n"
      "                      relative margin (default 0.05 ms)\n",
      Argv0, Argv0);
  return 2;
}

ErrorOr<std::string> readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return cogent::Error(cogent::ErrorCode::InvalidSpec,
                         "cannot open '" + Path + "'");
  std::string Content;
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Content.append(Buffer, Read);
  std::fclose(F);
  return Content;
}

/// The stats tallies every bench_service report must carry, all >= 0.
const char *const StatKeys[] = {
    "submitted",       "completed",      "failed",
    "shed_queue_full", "shed_overloaded", "shed_expired",
    "retries",         "coalesced",      "cache_hits",
    "cache_misses",    "quarantined",    "breaker_trips",
    "breaker_resets",  "deadline_degraded", "deadline_expired",
};

/// Top-level numeric keys a report must carry. race_findings /
/// race_rejections are the race-prover lint totals across the run
/// (KernelLint passes 11-13); findings may include benign warnings but a
/// rejection means the strict gate threw away a kernel for a proven race
/// or divergent barrier, which the TCCG suite must never produce.
const char *const NumberKeys[] = {
    "workers",           "client_threads", "requests_per_client",
    "deadline_ms",       "warmup_requests", "warmup_ms",
    "warmup_failures",   "steady_requests", "steady_ms",
    "throughput_req_per_s", "latency_p50_ms", "latency_p99_ms",
    "race_findings",     "race_rejections",
};

/// Validates one parsed report; prints one line per violation. Returns
/// the number of violations.
int checkSchema(const JsonValue &Report, const std::string &Label) {
  int Violations = 0;
  auto Complain = [&](const std::string &Msg) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", Label.c_str(),
                 Msg.c_str());
    ++Violations;
  };

  if (!Report.isObject()) {
    Complain("top-level value is not an object");
    return Violations;
  }
  for (const char *Key : {"bench", "suite", "device"}) {
    const JsonValue *V = Report.find(Key);
    if (!V || !V->isString())
      Complain(std::string("missing string key '") + Key + "'");
  }
  for (const char *Key : NumberKeys) {
    auto N = Report.findNumber(Key);
    if (!N)
      Complain(std::string("missing numeric key '") + Key + "'");
    else if (*N < 0.0)
      Complain(std::string("negative value for '") + Key + "'");
  }

  const JsonValue *Stats = Report.find("stats");
  if (!Stats || !Stats->isObject()) {
    Complain("missing object key 'stats'");
    return Violations;
  }
  for (const char *Key : StatKeys) {
    auto N = Stats->findNumber(Key);
    if (!N)
      Complain(std::string("stats: missing numeric key '") + Key + "'");
    else if (*N < 0.0)
      Complain(std::string("stats: negative tally '") + Key + "'");
  }

  // The conservation law: nothing submitted may vanish. An idle service
  // has submitted == completed + failed + shed_*; a report violating it
  // lost or double-counted requests.
  auto Stat = [&](const char *Key) {
    return Stats->findNumber(Key).value_or(0.0);
  };
  double Submitted = Stat("submitted");
  double Accounted = Stat("completed") + Stat("failed") +
                     Stat("shed_queue_full") + Stat("shed_overloaded") +
                     Stat("shed_expired");
  if (Submitted != Accounted)
    Complain("stats conservation violated: submitted=" +
             std::to_string(Submitted) + " != completed+failed+shed=" +
             std::to_string(Accounted));

  // The race gate: a strict-gate race rejection in a benchmark run means
  // the generator emitted (and discarded) a kernel with a proven data
  // race or divergent barrier — a generator regression, never noise.
  double RaceRejections = Report.findNumber("race_rejections").value_or(0.0);
  if (RaceRejections != 0.0)
    Complain("race_rejections must be zero, got " +
             std::to_string(RaceRejections));
  return Violations;
}

ErrorOr<JsonValue> loadReport(const std::string &Path) {
  ErrorOr<std::string> Text = readFile(Path);
  if (!Text)
    return Text.takeError();
  return parseJson(*Text);
}

struct GateCheck {
  std::string Name;
  double Fresh;
  double Limit;
  bool UpperBound; ///< true: Fresh must be <= Limit; false: >= Limit.
};

} // namespace

int main(int Argc, char **Argv) {
  std::string SchemaPath;
  std::string FreshPath;
  std::string BaselinePath;
  double Tolerance = 0.5;
  double ThroughputFloor = 0.0;
  double LatencySlackMs = 0.05;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "bench_compare: %s needs a value\n",
                     Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--schema") {
      const char *V = Value();
      if (!V)
        return 2;
      SchemaPath = V;
    } else if (Arg == "--fresh") {
      const char *V = Value();
      if (!V)
        return 2;
      FreshPath = V;
    } else if (Arg == "--baseline") {
      const char *V = Value();
      if (!V)
        return 2;
      BaselinePath = V;
    } else if (Arg == "--tolerance") {
      const char *V = Value();
      if (!V)
        return 2;
      Tolerance = std::strtod(V, nullptr);
    } else if (Arg == "--throughput-floor") {
      const char *V = Value();
      if (!V)
        return 2;
      ThroughputFloor = std::strtod(V, nullptr);
    } else if (Arg == "--latency-slack-ms") {
      const char *V = Value();
      if (!V)
        return 2;
      LatencySlackMs = std::strtod(V, nullptr);
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "bench_compare: unknown argument '%s'\n",
                   Arg.c_str());
      return usage(Argv[0]);
    }
  }

  if (!SchemaPath.empty()) {
    if (!FreshPath.empty() || !BaselinePath.empty())
      return usage(Argv[0]);
    ErrorOr<JsonValue> Report = loadReport(SchemaPath);
    if (!Report) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   Report.error().message().c_str());
      return 1;
    }
    int Violations = checkSchema(*Report, SchemaPath);
    if (Violations) {
      std::fprintf(stderr, "bench_compare: FAIL: %d schema violation%s\n",
                   Violations, Violations == 1 ? "" : "s");
      return 1;
    }
    std::printf("bench_compare: PASS: %s schema valid\n", SchemaPath.c_str());
    return 0;
  }

  if (FreshPath.empty() || BaselinePath.empty())
    return usage(Argv[0]);
  if (Tolerance < 0.0 || Tolerance >= 1.0) {
    std::fprintf(stderr,
                 "bench_compare: --tolerance must be in [0, 1), got %g\n",
                 Tolerance);
    return 2;
  }

  ErrorOr<JsonValue> Fresh = loadReport(FreshPath);
  if (!Fresh) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 Fresh.error().message().c_str());
    return 1;
  }
  ErrorOr<JsonValue> Baseline = loadReport(BaselinePath);
  if (!Baseline) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 Baseline.error().message().c_str());
    return 1;
  }
  int Violations =
      checkSchema(*Fresh, FreshPath) + checkSchema(*Baseline, BaselinePath);
  if (Violations) {
    std::fprintf(stderr, "bench_compare: FAIL: %d schema violation%s\n",
                 Violations, Violations == 1 ? "" : "s");
    return 1;
  }

  auto Num = [](const JsonValue &Report, const char *Key) {
    return Report.findNumber(Key).value_or(0.0);
  };
  std::vector<GateCheck> Checks;
  Checks.push_back({"throughput_req_per_s", Num(*Fresh, "throughput_req_per_s"),
                    Num(*Baseline, "throughput_req_per_s") * (1.0 - Tolerance),
                    /*UpperBound=*/false});
  if (ThroughputFloor > 0.0)
    Checks.push_back({"throughput_floor", Num(*Fresh, "throughput_req_per_s"),
                      ThroughputFloor, /*UpperBound=*/false});
  for (const char *Key : {"latency_p50_ms", "latency_p99_ms"})
    Checks.push_back({Key, Num(*Fresh, Key),
                      Num(*Baseline, Key) * (1.0 + Tolerance) + LatencySlackMs,
                      /*UpperBound=*/true});

  int Failures = 0;
  for (const GateCheck &Check : Checks) {
    bool Ok = Check.UpperBound ? Check.Fresh <= Check.Limit
                               : Check.Fresh >= Check.Limit;
    std::printf("bench_compare: %s: %-22s %12.4f %s %12.4f\n",
                Ok ? "PASS" : "FAIL", Check.Name.c_str(), Check.Fresh,
                Check.UpperBound ? "<=" : ">=", Check.Limit);
    Failures += Ok ? 0 : 1;
  }
  if (Failures) {
    std::fprintf(stderr,
                 "bench_compare: FAIL: %d perf gate%s regressed vs %s\n",
                 Failures, Failures == 1 ? "" : "s", BaselinePath.c_str());
    return 1;
  }
  std::printf("bench_compare: PASS: %s within tolerance %.2f of %s\n",
              FreshPath.c_str(), Tolerance, BaselinePath.c_str());
  return 0;
}
