//===- tools/json_lint.cpp - JSON well-formedness checker ------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates that each file named on the command line is well-formed JSON
/// (RFC 8259, via support::validateJson). scripts/run_all.sh uses this to
/// fail the smoke run when a --trace / --metrics / bench JSON artifact is
/// malformed, without assuming jq or python exist in the container.
///
/// Exit codes: 0 = all files valid, 1 = at least one file malformed or
/// unreadable, 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "support/JsonWriter.h"

#include <cstdio>
#include <string>

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", Argv[0]);
    return 2;
  }
  int Failures = 0;
  for (int I = 1; I < Argc; ++I) {
    std::FILE *File = std::fopen(Argv[I], "rb");
    if (!File) {
      std::fprintf(stderr, "%s: cannot open\n", Argv[I]);
      ++Failures;
      continue;
    }
    std::string Text;
    char Buffer[1 << 16];
    size_t Read;
    while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
      Text.append(Buffer, Read);
    std::fclose(File);

    std::string Err;
    size_t Line = 0, Column = 0;
    if (cogent::support::validateJsonAt(Text, &Err, &Line, &Column)) {
      std::printf("%s: ok (%zu bytes)\n", Argv[I], Text.size());
    } else {
      std::fprintf(stderr, "%s:%zu:%zu: malformed JSON: %s\n", Argv[I], Line,
                   Column, Err.c_str());
      ++Failures;
    }
  }
  return Failures == 0 ? 0 : 1;
}
